//! Analytic performance models: the paper's Eqs. (1)–(4).
//!
//! With data and twiddles in off-chip DRAM, the FFT is bandwidth-bound. A
//! `P`-point codelet moves `(P + P + (P−1)) · 16` bytes (load data, load
//! twiddles, store data) and performs `5 · P · log₂P` flops, so the best
//! achievable rate on a machine with DRAM bandwidth `B` bytes/s is
//!
//! ```text
//! peak = 5 · P · log₂P · B / (16 · (3P − 1))   flops/s
//! ```
//!
//! which for `P = 64`, `B = 16 GB/s` is the paper's **10 GFLOPS** (Eq. 4).

use crate::kernel::twiddle_loads;
use crate::plan::FftPlan;
use c64sim::ChipConfig;

/// Bytes per complex element.
const ELEM: f64 = 16.0;

/// The paper's Eq. (4) generalized to any codelet size: the DRAM-bound peak
/// in GFLOPS for `2^radix_log2`-point codelets on a machine with
/// `dram_bytes_per_sec` of off-chip bandwidth.
pub fn theoretical_peak_gflops(radix_log2: u32, dram_bytes_per_sec: f64) -> f64 {
    let p = (1u64 << radix_log2) as f64;
    5.0 * p * radix_log2 as f64 * dram_bytes_per_sec / (ELEM * (3.0 * p - 1.0)) / 1e9
}

/// The paper's headline number: 10 GFLOPS for 64-point codelets at 16 GB/s.
pub fn paper_peak_gflops() -> f64 {
    theoretical_peak_gflops(6, 16e9)
}

/// Total floating-point operations of a full transform: `5 · N · log₂N`.
pub fn total_flops(plan: &FftPlan) -> u64 {
    5 * plan.n() as u64 * plan.n_log2() as u64
}

/// Total DRAM bytes a transform moves (all stages, exact — accounts for the
/// partial last stage's reduced twiddle count).
pub fn total_dram_bytes(plan: &FftPlan) -> u64 {
    let cps = plan.codelets_per_stage() as u64;
    let p = plan.radix() as u64;
    (0..plan.stages())
        .map(|s| cps * (2 * p + twiddle_loads(plan, s) as u64) * ELEM as u64)
        .sum()
}

/// Upper bound on achieved GFLOPS for this exact plan on this chip: flops
/// divided by the bandwidth-limited transfer time. Tighter than
/// [`theoretical_peak_gflops`] for plans with a partial last stage.
pub fn bandwidth_bound_gflops(plan: &FftPlan, chip: &ChipConfig) -> f64 {
    let secs = total_dram_bytes(plan) as f64 / chip.dram_bandwidth_bytes_per_sec();
    total_flops(plan) as f64 / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_is_ten_gflops() {
        // Eq. (4): 5·64·6·16G / (191·16) ≈ 10.05 GFLOPS, which the paper
        // rounds to 10.
        let peak = paper_peak_gflops();
        assert!((peak - 10.05).abs() < 0.01, "got {peak}");
    }

    #[test]
    fn peak_increases_with_codelet_size() {
        let mut prev = 0.0;
        for p in 1..=7 {
            let g = theoretical_peak_gflops(p, 16e9);
            assert!(g > prev, "2^{p}: {g} <= {prev}");
            prev = g;
        }
    }

    #[test]
    fn peak_scales_linearly_with_bandwidth() {
        let a = theoretical_peak_gflops(6, 16e9);
        let b = theoretical_peak_gflops(6, 32e9);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_flops_is_5nlogn() {
        let plan = FftPlan::new(13, 6);
        assert_eq!(total_flops(&plan), 5 * 8192 * 13);
    }

    #[test]
    fn total_bytes_full_stages() {
        let plan = FftPlan::new(12, 6);
        // 2 stages × 64 codelets × (128 + 63) elements × 16 B.
        assert_eq!(total_dram_bytes(&plan), 2 * 64 * 191 * 16);
    }

    #[test]
    fn bandwidth_bound_close_to_eq4_for_full_plans() {
        let plan = FftPlan::new(18, 6);
        let chip = ChipConfig::cyclops64();
        let bound = bandwidth_bound_gflops(&plan, &chip);
        assert!((bound - paper_peak_gflops()).abs() < 0.01, "got {bound}");
    }

    #[test]
    fn partial_last_stage_lowers_the_bound() {
        // Extra stage for only 1 more level of flops → worse flop/byte.
        let full = FftPlan::new(18, 6);
        let partial = FftPlan::new(19, 6);
        let chip = ChipConfig::cyclops64();
        assert!(bandwidth_bound_gflops(&partial, &chip) < bandwidth_bound_gflops(&full, &chip));
    }
}
