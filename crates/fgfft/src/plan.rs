//! The stage/codelet index algebra of the radix-2^p iterative FFT.
//!
//! After the bit-reversal permutation, an `N = 2^n`-point FFT is computed in
//! `⌈n/p⌉` stages of `N/2^p` codelets (the paper uses `p = 6`, 64-point
//! codelets). Stage `j` applies global butterfly levels `p·j .. p·j+q_j`
//! where `q_j = min(p, n − p·j)` — every stage applies `p` levels except
//! possibly the last.
//!
//! ## The uniform "group" formulation
//!
//! Let `q = q_j`. At stage `j`, element indices that participate in one
//! independent `2^q`-point sub-transform differ only in bits
//! `[p·j, p·j + q)`. Collapsing those bits yields the element's **group**
//!
//! ```text
//! group(e) = (e >> (p·j + q)) << (p·j)  |  (e & (2^{p·j} − 1))
//! ```
//!
//! There are `N/2^q` groups; each codelet processes `2^{p−q}` *consecutive*
//! groups (exactly 1 for a full stage), so the codelet owning element `e` is
//!
//! ```text
//! owner_j(e) = group(e) >> (p − q)
//! ```
//!
//! For full stages this reduces to the paper's gather formula
//! `data_k = D[P^{j+1}·⌊i/P^j⌋ + i mod P^j + k·P^j]`, and the parent/child
//! relations below reduce to the paper's closed forms (Sec. IV-A2),
//! including the fact that **every `P` children share the same `P` parents**
//! — the shared-counter optimization. The group formulation additionally
//! covers the partial last stage (when `n mod p ≠ 0`) that the paper
//! handles with its special `FFT_last_stage_kernel`.

use codelet::graph::{CodeletId, SharedGroup};

/// Maximum supported codelet radix exponent (128-point codelets). Bounded so
/// kernels can use a fixed-size local buffer (the "scratchpad").
pub const MAX_RADIX_LOG2: u32 = 7;

/// The decomposition of one FFT problem into stages and codelets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftPlan {
    n_log2: u32,
    radix_log2: u32,
}

impl FftPlan {
    /// Plan a `2^n_log2`-point FFT with `2^radix_log2`-point codelets.
    /// The radix is clamped to the transform size.
    pub fn new(n_log2: u32, radix_log2: u32) -> Self {
        assert!(n_log2 >= 1, "need at least a 2-point transform");
        assert!(
            (1..=MAX_RADIX_LOG2).contains(&radix_log2),
            "radix_log2 must be in 1..={MAX_RADIX_LOG2}"
        );
        Self {
            n_log2,
            radix_log2: radix_log2.min(n_log2),
        }
    }

    /// The paper's configuration: 64-point codelets.
    pub fn with_default_radix(n_log2: u32) -> Self {
        Self::new(n_log2, 6)
    }

    /// Transform size exponent `n`.
    pub fn n_log2(&self) -> u32 {
        self.n_log2
    }

    /// Transform size `N`.
    pub fn n(&self) -> usize {
        1 << self.n_log2
    }

    /// Codelet radix exponent `p`.
    pub fn radix_log2(&self) -> u32 {
        self.radix_log2
    }

    /// Codelet size `P = 2^p` in points.
    pub fn radix(&self) -> usize {
        1 << self.radix_log2
    }

    /// Number of stages `⌈n/p⌉`.
    pub fn stages(&self) -> usize {
        self.n_log2.div_ceil(self.radix_log2) as usize
    }

    /// Butterfly levels applied by stage `j` (`p`, except possibly fewer in
    /// the last stage).
    pub fn levels(&self, stage: usize) -> u32 {
        assert!(stage < self.stages(), "stage out of range");
        (self.n_log2 - self.radix_log2 * stage as u32).min(self.radix_log2)
    }

    /// True when stage `j` applies the full `p` levels.
    pub fn is_full_stage(&self, stage: usize) -> bool {
        self.levels(stage) == self.radix_log2
    }

    /// Codelets per stage: `N / P`.
    pub fn codelets_per_stage(&self) -> usize {
        self.n() >> self.radix_log2
    }

    /// Total codelets over all stages.
    pub fn total_codelets(&self) -> usize {
        self.stages() * self.codelets_per_stage()
    }

    /// Global codelet id of `(stage, idx)`.
    pub fn codelet_id(&self, stage: usize, idx: usize) -> CodeletId {
        debug_assert!(stage < self.stages());
        debug_assert!(idx < self.codelets_per_stage());
        stage * self.codelets_per_stage() + idx
    }

    /// Stage of a global codelet id.
    pub fn stage_of(&self, id: CodeletId) -> usize {
        id / self.codelets_per_stage()
    }

    /// Within-stage index of a global codelet id.
    pub fn idx_of(&self, id: CodeletId) -> usize {
        id % self.codelets_per_stage()
    }

    /// The codelet (within-stage index) owning element `e` at stage `j`.
    #[inline]
    pub fn owner(&self, stage: usize, e: usize) -> usize {
        let p = self.radix_log2;
        let pj = p * stage as u32;
        let q = self.levels(stage);
        let group = ((e >> (pj + q)) << pj) | (e & mask(pj));
        group >> (p - q)
    }

    /// Visit the elements of codelet `(stage, idx)` in gather order: local
    /// slot `s` (in `0..P`) holds global element `visit(s)`. Elements of one
    /// `2^q`-point sub-transform occupy `2^q` consecutive local slots.
    #[inline]
    pub fn for_each_element(&self, stage: usize, idx: usize, mut f: impl FnMut(usize, usize)) {
        let p = self.radix_log2;
        let pj = p * stage as u32;
        let q = self.levels(stage);
        let groups = 1usize << (p - q);
        let first_group = idx << (p - q);
        let mut slot = 0;
        for g_rel in 0..groups {
            let g = first_group + g_rel;
            let g_high = g >> pj;
            let g_low = g & mask(pj);
            for x in 0..1usize << q {
                let e = (g_high << (pj + q)) | (x << pj) | g_low;
                f(slot, e);
                slot += 1;
            }
        }
    }

    /// The elements of a codelet, materialized (test/diagnostic helper; hot
    /// paths use [`FftPlan::for_each_element`]).
    pub fn elements(&self, stage: usize, idx: usize) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.radix());
        self.for_each_element(stage, idx, |_, e| v.push(e));
        v
    }

    /// Append the global ids of the children (stage `j+1` codelets that read
    /// what `(stage, idx)` writes) to `out`, deduplicated.
    pub fn children_of(&self, stage: usize, idx: usize, out: &mut Vec<CodeletId>) {
        if stage + 1 >= self.stages() {
            return;
        }
        let next = stage + 1;
        let base = next * self.codelets_per_stage();
        let mut last = usize::MAX;
        // Owners are non-decreasing along the gather order, so consecutive
        // deduplication suffices.
        self.for_each_element(stage, idx, |_, e| {
            let child = self.owner(next, e);
            if child != last {
                out.push(base + child);
                last = child;
            }
        });
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "children must be strictly increasing for consecutive dedup to be exact"
        );
    }

    /// Number of distinct parents of codelet `(stage, idx)` — its dependence
    /// count. Full-stage codelets (with a full-stage predecessor) have
    /// exactly `P` parents; the partial last stage is computed generically.
    pub fn parent_count(&self, stage: usize, idx: usize) -> u32 {
        if stage == 0 {
            return 0;
        }
        if self.is_full_stage(stage) {
            return self.radix() as u32;
        }
        let mut parents = [usize::MAX; 1 << MAX_RADIX_LOG2];
        let mut count = 0u32;
        let prev = stage - 1;
        self.for_each_element(stage, idx, |_, e| {
            let o = self.owner(prev, e);
            if !parents[..count as usize].contains(&o) {
                parents[count as usize] = o;
                count += 1;
            }
        });
        count
    }

    /// Append the global ids of the parents of `(stage, idx)` to `out`,
    /// deduplicated (diagnostic / verification helper).
    pub fn parents_of(&self, stage: usize, idx: usize, out: &mut Vec<CodeletId>) {
        if stage == 0 {
            return;
        }
        let prev = stage - 1;
        let base = prev * self.codelets_per_stage();
        let start = out.len();
        self.for_each_element(stage, idx, |_, e| {
            let parent = base + self.owner(prev, e);
            if !out[start..].contains(&parent) {
                out.push(parent);
            }
        });
    }

    // ---- Shared dependence-counter groups (paper Sec. IV-A2) ----
    //
    // In a full stage s ≥ 1, the parent set of codelet `c` is determined by
    // the key (c >> p·s, c mod 2^{p·(s−1)}): all `P` codelets sharing the
    // key share the same `P` parents and can share one counter.

    /// Shared-counter groups per eligible stage (`N/P / P`), or 0 when the
    /// stage is too small for sharing.
    pub fn groups_per_stage(&self) -> usize {
        self.codelets_per_stage() >> self.radix_log2
    }

    /// Stages whose codelets participate in shared counters: every stage
    /// except stage 0 — including a partial last stage, whose children also
    /// share parent sets in runs of `P`, at shifted key bits — except the
    /// degenerate case of a partial stage 1 (2-stage plans), where the key
    /// bits don't exist.
    fn stage_has_groups(&self, stage: usize) -> bool {
        stage >= 1 && self.groups_per_stage() > 0 && (self.is_full_stage(stage) || stage >= 2)
    }

    /// Bit positions of a stage's shared-group key: returns
    /// `(low_bits, high_shift)` — members share `idx >> high_shift` and
    /// `idx & mask(low_bits)` and differ only in the `p` bits between.
    /// For a full stage this is `(p(s−1), p·s)`; a partial stage with `q`
    /// levels shifts both down by `p − q`.
    fn group_key_bits(&self, stage: usize) -> (u32, u32) {
        let p = self.radix_log2;
        let q = self.levels(stage);
        let shift_down = p - q;
        let high = p * stage as u32 - shift_down;
        let low = p * (stage as u32 - 1) - shift_down;
        (low, high)
    }

    /// Total shared groups in the program.
    pub fn num_shared_groups(&self) -> usize {
        (1..self.stages())
            .filter(|&s| self.stage_has_groups(s))
            .count()
            * self.groups_per_stage()
    }

    /// The shared group of a codelet, if its stage supports sharing.
    ///
    /// For a full stage `s ≥ 1`, the parent set of codelet `c` is determined
    /// by `(c >> p·s, c mod 2^{p(s−1)})`; the `P` codelets that differ only
    /// in bits `[p(s−1), p·s)` share it. (This is the paper's observation
    /// that every 64 children share the same 64 parents.)
    pub fn shared_group_of(&self, id: CodeletId) -> Option<SharedGroup> {
        let stage = self.stage_of(id);
        if !self.stage_has_groups(stage) {
            return None;
        }
        let idx = self.idx_of(id);
        let (low_bits, high_shift) = self.group_key_bits(stage);
        let h = idx >> high_shift;
        let l = idx & mask(low_bits);
        let local = (h << low_bits) | l;
        // Groups are numbered densely: eligible stage s occupies block s-1.
        Some(SharedGroup {
            group: (stage - 1) * self.groups_per_stage() + local,
            target: self.radix() as u32,
        })
    }

    /// Append the members of shared group `group` to `out`.
    pub fn shared_group_members(&self, group: usize, out: &mut Vec<CodeletId>) {
        let gps = self.groups_per_stage();
        let stage = group / gps + 1;
        let local = group % gps;
        let (low_bits, high_shift) = self.group_key_bits(stage);
        let h = local >> low_bits;
        let l = local & mask(low_bits);
        for mid in 0..self.radix() {
            let idx = (h << high_shift) | (mid << low_bits) | l;
            out.push(self.codelet_id(stage, idx));
        }
    }

    /// Length of one child-sharing run in [`FftPlan::grouped_stage_order`]:
    /// the number of stage-`j` codelets that feed exactly the same set of
    /// stage-`j+1` codelets (`P` in the common case, fewer in deep stages of
    /// small transforms).
    pub fn grouped_run_len(&self, stage: usize) -> usize {
        assert!(stage + 1 < self.stages(), "stage has no children");
        let p = self.radix_log2;
        let pj = p * stage as u32;
        let avail = (self.n_log2 - p) - pj;
        1usize << avail.min(p)
    }

    /// Within-stage codelet order grouped by child-sharing key: codelets
    /// that feed the same children appear consecutively, in runs of
    /// [`FftPlan::grouped_run_len`]. This is the seeding order of the guided
    /// algorithm's second phase (Alg. 3): completing one run immediately
    /// enables a batch of next-stage codelets.
    pub fn grouped_stage_order(&self, stage: usize) -> Vec<usize> {
        assert!(stage + 1 < self.stages(), "stage has no children");
        let p = self.radix_log2;
        let cps = self.codelets_per_stage();
        let pj = p * stage as u32;
        // For stage j with children, p·(j+1) ≤ n so pj ≤ n−p: the idx bits
        // split as [0,pj) = key-low, [pj, pj+run) = run, rest = key-high.
        let avail = (self.n_log2 - p) - pj;
        let run_bits = avail.min(p);
        let mut order = Vec::with_capacity(cps);
        for h in 0..1usize << (avail - run_bits) {
            for l in 0..1usize << pj {
                for mid in 0..1usize << run_bits {
                    order.push((h << (pj + run_bits)) | (mid << pj) | l);
                }
            }
        }
        debug_assert_eq!(order.len(), cps, "grouped order must be a permutation");
        order
    }

    /// [`FftPlan::grouped_stage_order`] with the child-sharing runs
    /// themselves re-sequenced so that consecutive runs enable children
    /// whose *data* lands on different DRAM banks.
    ///
    /// The children of one run share the low `p·j` index bits (`l`), and on
    /// C64 (16-byte elements, 64-byte interleave units, 4 banks) the data
    /// bank of a next-stage codelet's gather is selected by bits `2..4` of
    /// those shared low bits. Enabling runs in plain `l` order therefore
    /// releases four same-bank bursts in a row; rotating bits `2..4` makes
    /// consecutive bursts target different banks. Falls back to the plain
    /// order when `p·j < 4` (no bank bits in the key).
    pub fn grouped_stage_order_bank_rotated(&self, stage: usize) -> Vec<usize> {
        assert!(stage + 1 < self.stages(), "stage has no children");
        let p = self.radix_log2;
        let pj = p * stage as u32;
        if pj < 4 {
            return self.grouped_stage_order(stage);
        }
        let cps = self.codelets_per_stage();
        let avail = (self.n_log2 - p) - pj;
        let run_bits = avail.min(p);
        let mut order = Vec::with_capacity(cps);
        for h in 0..1usize << (avail - run_bits) {
            for i in 0..1usize << pj {
                // Re-index l so its bank bits (2..4) cycle fastest.
                let class = i & 3;
                let rest = i >> 2;
                let l = ((rest >> 2) << 4) | (class << 2) | (rest & 3);
                for mid in 0..1usize << run_bits {
                    order.push((h << (pj + run_bits)) | (mid << pj) | l);
                }
            }
        }
        debug_assert_eq!(order.len(), cps, "rotated order must be a permutation");
        order
    }
}

/// Low-bit mask helper: `2^bits − 1` (saturating for large shifts).
#[inline]
fn mask(bits: u32) -> usize {
    if bits as usize >= usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stage_counts() {
        let p = FftPlan::new(19, 6);
        assert_eq!(p.stages(), 4);
        assert_eq!(p.levels(0), 6);
        assert_eq!(p.levels(2), 6);
        assert_eq!(p.levels(3), 1, "19 = 3*6 + 1");
        assert!(!p.is_full_stage(3));
        let p = FftPlan::new(18, 6);
        assert_eq!(p.stages(), 3);
        assert!(p.is_full_stage(2));
        assert_eq!(p.codelets_per_stage(), 1 << 12);
        assert_eq!(p.total_codelets(), 3 << 12);
    }

    #[test]
    fn radix_clamped_to_size() {
        let p = FftPlan::new(3, 6);
        assert_eq!(p.radix_log2(), 3);
        assert_eq!(p.stages(), 1);
    }

    #[test]
    fn id_roundtrip() {
        let p = FftPlan::new(12, 6);
        for stage in 0..p.stages() {
            for idx in [0, 1, p.codelets_per_stage() - 1] {
                let id = p.codelet_id(stage, idx);
                assert_eq!(p.stage_of(id), stage);
                assert_eq!(p.idx_of(id), idx);
            }
        }
    }

    /// Every stage's codelets partition the element set.
    #[test]
    fn elements_partition_every_stage() {
        for (n_log2, p_log2) in [(8u32, 3u32), (9, 3), (10, 4), (13, 6), (7, 6)] {
            let plan = FftPlan::new(n_log2, p_log2);
            for stage in 0..plan.stages() {
                let mut seen = vec![false; plan.n()];
                for idx in 0..plan.codelets_per_stage() {
                    plan.for_each_element(stage, idx, |_, e| {
                        assert!(e < plan.n(), "element out of range");
                        assert!(!seen[e], "element {e} owned twice in stage {stage}");
                        seen[e] = true;
                        assert_eq!(
                            plan.owner(stage, e),
                            idx,
                            "owner() disagrees with for_each_element (n={n_log2}, p={p_log2}, stage={stage})"
                        );
                    });
                }
                assert!(seen.iter().all(|&s| s), "stage {stage} missed elements");
            }
        }
    }

    /// Gather order puts each sub-transform in contiguous local slots and
    /// matches the paper's stride-P^j formula on full stages.
    #[test]
    fn full_stage_gather_matches_paper_formula() {
        let plan = FftPlan::new(18, 6); // all stages full
        let pp = 64usize;
        for stage in 0..plan.stages() {
            let stride = pp.pow(stage as u32);
            for idx in [0usize, 1, 17, plan.codelets_per_stage() - 1] {
                let base = (idx / stride) * stride * pp + idx % stride;
                let expect: Vec<usize> = (0..pp).map(|k| base + k * stride).collect();
                assert_eq!(plan.elements(stage, idx), expect, "stage {stage} idx {idx}");
            }
        }
    }

    /// Children/parent relations are mutually consistent and the full-stage
    /// counts match the paper (64 children, 64 parents).
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn children_and_parents_are_consistent() {
        for (n_log2, p_log2) in [(9u32, 3u32), (10, 3), (13, 6), (14, 6)] {
            let plan = FftPlan::new(n_log2, p_log2);
            let cps = plan.codelets_per_stage();
            for stage in 0..plan.stages() - 1 {
                let mut child_sets: Vec<HashSet<usize>> = vec![HashSet::new(); cps];
                let mut kids = Vec::new();
                for idx in 0..cps {
                    kids.clear();
                    plan.children_of(stage, idx, &mut kids);
                    for &k in &kids {
                        assert_eq!(plan.stage_of(k), stage + 1);
                        child_sets[idx].insert(plan.idx_of(k));
                    }
                }
                // Invert: parent counts derived from children must equal
                // parent_count().
                let mut derived = vec![0u32; cps];
                for set in &child_sets {
                    for &c in set {
                        derived[c] += 1;
                    }
                }
                for idx in 0..cps {
                    assert_eq!(
                        derived[idx],
                        plan.parent_count(stage + 1, idx),
                        "n={n_log2} p={p_log2} stage {} idx {idx}",
                        stage + 1
                    );
                }
            }
        }
    }

    #[test]
    fn full_stages_have_exactly_p_parents_and_children() {
        let plan = FftPlan::new(18, 6);
        let mut kids = Vec::new();
        for stage in 0..plan.stages() - 1 {
            for idx in [0usize, 5, 4095] {
                kids.clear();
                plan.children_of(stage, idx, &mut kids);
                assert_eq!(kids.len(), 64);
            }
        }
        for stage in 1..plan.stages() {
            assert_eq!(plan.parent_count(stage, 7), 64);
        }
    }

    /// The paper's worked example: for N with 64^3 codelets per stage, the
    /// 80th codelet of stage 3 has parents 80 + 4096·m in stage 2.
    #[test]
    fn paper_worked_example() {
        // Need cps >= 64^3 = 2^18 → n_log2 = 24, all stages full.
        let plan = FftPlan::new(24, 6);
        let mut parents = Vec::new();
        plan.parents_of(3, 80, &mut parents);
        let base = 2 * plan.codelets_per_stage();
        let expect: Vec<usize> = (0..64).map(|m| base + 80 + 4096 * m).collect();
        let got: HashSet<usize> = parents.iter().copied().collect();
        assert_eq!(got, expect.iter().copied().collect::<HashSet<_>>());
        // And codelet 4176 = 80 + 4096 of stage 3 shares those parents.
        let mut parents2 = Vec::new();
        plan.parents_of(3, 4176, &mut parents2);
        assert_eq!(
            parents.iter().copied().collect::<HashSet<_>>(),
            parents2.iter().copied().collect::<HashSet<_>>()
        );
    }

    /// Shared groups: members share exactly the same parent set, groups
    /// partition the eligible stages, target = P.
    #[test]
    fn shared_groups_are_sound() {
        for (n_log2, p_log2) in [(13u32, 3u32), (12, 3), (14, 6)] {
            let plan = FftPlan::new(n_log2, p_log2);
            let mut members = Vec::new();
            let mut covered: HashSet<usize> = HashSet::new();
            for g in 0..plan.num_shared_groups() {
                members.clear();
                plan.shared_group_members(g, &mut members);
                assert_eq!(members.len(), plan.radix());
                let mut parent_sets: Vec<HashSet<usize>> = Vec::new();
                for &m in &members {
                    assert!(covered.insert(m), "codelet {m} in two groups");
                    assert_eq!(
                        plan.shared_group_of(m).expect("member must map back").group,
                        g,
                        "n={n_log2} p={p_log2} member {m}"
                    );
                    let mut ps = Vec::new();
                    plan.parents_of(plan.stage_of(m), plan.idx_of(m), &mut ps);
                    parent_sets.push(ps.into_iter().collect());
                }
                for w in parent_sets.windows(2) {
                    assert_eq!(w[0], w[1], "group {g} members disagree on parents");
                }
            }
            // Every codelet of an eligible stage is covered.
            for id in 0..plan.total_codelets() {
                if let Some(g) = plan.shared_group_of(id) {
                    assert!(covered.contains(&id));
                    assert_eq!(g.target, plan.radix() as u32);
                }
            }
        }
    }

    #[test]
    fn partial_last_stage_shares_counters_too() {
        // Children of a partial last stage also share parent sets in runs
        // of P, at shifted key bits.
        let plan = FftPlan::new(13, 6); // last stage: 1 level
        let last = plan.stages() - 1;
        for idx in 0..plan.codelets_per_stage() {
            let g = plan
                .shared_group_of(plan.codelet_id(last, idx))
                .expect("partial last stage must have groups");
            assert_eq!(g.target, 64);
            assert_eq!(plan.parent_count(last, idx), 64);
        }
        assert!(plan.shared_group_of(plan.codelet_id(1, 0)).is_some());
    }

    #[test]
    fn two_stage_partial_plan_has_no_groups_in_stage_one() {
        // stages = 2 with a partial last stage: the key bits don't exist.
        let plan = FftPlan::new(10, 6); // stages: q=6, q=4
        assert_eq!(plan.stages(), 2);
        assert!(!plan.is_full_stage(1));
        for idx in 0..plan.codelets_per_stage() {
            assert!(plan.shared_group_of(plan.codelet_id(1, idx)).is_none());
        }
        assert_eq!(plan.num_shared_groups(), 0);
    }

    #[test]
    fn grouped_stage_order_is_permutation() {
        for (n_log2, p_log2) in [(13u32, 3u32), (14, 6), (19, 6)] {
            let plan = FftPlan::new(n_log2, p_log2);
            for stage in 0..plan.stages() - 1 {
                let order = plan.grouped_stage_order(stage);
                let set: HashSet<usize> = order.iter().copied().collect();
                assert_eq!(set.len(), plan.codelets_per_stage(), "stage {stage}");
                assert_eq!(order.len(), plan.codelets_per_stage());
            }
        }
    }

    /// In the grouped order, each consecutive run shares its children.
    #[test]
    fn grouped_order_runs_share_children() {
        for (n_log2, p_log2, stage) in [(14u32, 6u32, 1usize), (13, 6, 0), (12, 3, 2)] {
            let plan = FftPlan::new(n_log2, p_log2);
            let order = plan.grouped_stage_order(stage);
            let run_len = plan.grouped_run_len(stage);
            assert_eq!(order.len() % run_len, 0);
            let mut kids = Vec::new();
            for run in order.chunks(run_len) {
                let mut sets: Vec<HashSet<usize>> = Vec::new();
                for &idx in run {
                    kids.clear();
                    plan.children_of(stage, idx, &mut kids);
                    sets.push(kids.iter().copied().collect());
                }
                for w in sets.windows(2) {
                    assert_eq!(
                        w[0], w[1],
                        "n={n_log2} p={p_log2} stage {stage}: run does not share children"
                    );
                }
            }
        }
    }

    #[test]
    fn dep_counts_cover_whole_program() {
        // Total signals = total child edges; verify sum(dep) == sum(children).
        for (n_log2, p_log2) in [(9u32, 3u32), (13, 6)] {
            let plan = FftPlan::new(n_log2, p_log2);
            let cps = plan.codelets_per_stage();
            let mut kids = Vec::new();
            let mut total_edges = 0usize;
            for stage in 0..plan.stages() {
                for idx in 0..cps {
                    kids.clear();
                    plan.children_of(stage, idx, &mut kids);
                    total_edges += kids.len();
                }
            }
            let mut total_deps = 0usize;
            for stage in 0..plan.stages() {
                for idx in 0..cps {
                    total_deps += plan.parent_count(stage, idx) as usize;
                }
            }
            assert_eq!(total_edges, total_deps, "n={n_log2} p={p_log2}");
        }
    }

    #[test]
    #[should_panic(expected = "stage out of range")]
    fn levels_checks_range() {
        FftPlan::new(12, 6).levels(2);
    }
}
