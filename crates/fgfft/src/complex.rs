//! Double-precision complex arithmetic.
//!
//! The FFT works on `Complex64` values (16 bytes — the unit the C64 DRAM
//! interleave packs four of into one 64-byte stripe). A tiny bespoke type is
//! used instead of an external crate: the kernels only need add, sub, mul,
//! conjugation and `e^{iθ}`, and keeping the type local guarantees a
//! `#[repr(C)]` 16-byte layout that address-level reasoning in the simulator
//! can rely on.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number, laid out as `[re, im]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Size of one element in bytes — 4 of these fill one 64-byte DRAM stripe.
pub const ELEM_BYTES: u64 = 16;

impl Complex64 {
    /// Zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn expi(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Distance to another value (for approximate comparisons in tests).
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl From<(f64, f64)> for Complex64 {
    fn from((re, im): (f64, f64)) -> Self {
        Self { re, im }
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Root-mean-square distance between two complex slices — the oracle metric
/// used throughout the test suite.
pub fn rms_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y).norm_sqr()).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Complex64>(), 16);
        assert_eq!(std::mem::align_of::<Complex64>(), 8);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -2.0);
        let b = Complex64::new(-1.0, 4.0);
        assert_eq!(a + b, Complex64::new(2.0, 2.0));
        assert_eq!(a - b, Complex64::new(4.0, -6.0));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(-a, Complex64::new(-3.0, 2.0));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn expi_on_unit_circle() {
        use std::f64::consts::PI;
        let w = Complex64::expi(PI / 2.0);
        assert!(w.dist(Complex64::I) < 1e-15);
        let w = Complex64::expi(PI);
        assert!(w.dist(Complex64::new(-1.0, 0.0)) < 1e-15);
        assert!((Complex64::expi(0.7).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!(p.dist(Complex64::new(25.0, 0.0)) < 1e-12);
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::new(1.0, 0.0);
        a -= Complex64::new(0.0, 1.0);
        a *= Complex64::new(2.0, 0.0);
        assert_eq!(a, Complex64::new(4.0, 0.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
        assert_eq!(Complex64::from((1.0, -1.0)), Complex64::new(1.0, -1.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn rms_error_basics() {
        let a = vec![Complex64::ONE, Complex64::I];
        assert_eq!(rms_error(&a, &a), 0.0);
        let b = vec![Complex64::ZERO, Complex64::I];
        assert!((rms_error(&a, &b) - (0.5f64).sqrt()).abs() < 1e-15);
        assert_eq!(rms_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rms_error_length_mismatch_panics() {
        rms_error(&[Complex64::ZERO], &[]);
    }
}
