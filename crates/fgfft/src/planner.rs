//! Reusable execution plans and the wisdom-style plan cache.
//!
//! [`crate::exec::fft_in_place`] derives everything a transform needs —
//! twiddle table, bit-reversal permutation, codelet-graph schedule — on
//! every call. That is the right shape for a one-shot API and the wrong
//! shape for a service: under sustained traffic the same `(N, version,
//! layout)` triple recurs millions of times. This module splits the two
//! concerns:
//!
//! * [`Plan`] — everything derivable from a [`PlanKey`], computed once:
//!   the twiddle table, the bit-reversal transposition list, the
//!   codelet-graph schedule **materialized** into flat CSR arrays
//!   ([`codelet::CsrProgram`]), and per-stage execution tables (gather
//!   indices, butterfly pair pattern, per-codelet twiddle runs) so the hot
//!   path streams flat arrays instead of redoing index algebra and twiddle
//!   lookups per call. `Plan::execute` runs one transform;
//!   `Plan::execute_batch` runs many same-plan transforms through a single
//!   runtime dispatch ([`codelet::BatchProgram`]).
//! * [`Planner`] — a sharded, single-flight cache of `Arc<Plan>` keyed by
//!   [`PlanKey`] (FFTW calls the same idea *wisdom*). Concurrent requests
//!   for one key build the plan exactly once: the first thread computes
//!   while the others block on the slot and share the result.
//!
//! Execution through a plan is bit-identical to the uncached path: the
//! codelet DAG fixes the arithmetic, and the plan merely caches the DAG.

use crate::backend::{CodeletKernel, ScalarKernel};
use crate::bitrev::{apply_swaps_parallel, bit_reverse_swaps};
use crate::cert::CertPolicy;
use crate::complex::Complex64;
use crate::exec::shared::SharedData;
use crate::exec::{ExecStats, Version};
use crate::plan::{FftPlan, MAX_RADIX_LOG2};
use crate::twiddle::{TwiddleLayout, TwiddleTable};
use crate::wisdom::{Wisdom, WisdomEntry, WisdomStatus};
use crate::workload::{
    self, ScheduleSpec, ScheduleTuning, TransformKind, DEFAULT_TRANSPOSE_BLOCK_LOG2,
    SCRATCHPAD_RADIX_LOG2,
};
use codelet::graph::{BatchProgram, CodeletId, CsrProgram};
use codelet::pool::PoolDiscipline;
use codelet::runtime::Runtime;
use fgsupport::sync::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identity of a cacheable plan. Two requests with equal keys are served by
/// the same [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Transform size exponent (`N = 2^n_log2`; `rows · cols` for 2D).
    pub n_log2: u32,
    /// Codelet radix exponent, clamped to the transform size.
    pub radix_log2: u32,
    /// Scheduling algorithm.
    pub version: Version,
    /// Twiddle-table memory layout.
    pub layout: TwiddleLayout,
    /// What is being transformed (complex 1D, real, 2D).
    pub kind: TransformKind,
}

impl PlanKey {
    /// Key for an `n`-point transform (`n` a power of two ≥ 2) with the
    /// default 64-point codelets.
    pub fn new(n: usize, version: Version, layout: TwiddleLayout) -> Self {
        Self::with_radix(n, version, layout, 6)
    }

    /// Key with an explicit codelet radix exponent (1..=7). The radix is
    /// clamped to the transform size so equivalent configurations share one
    /// cache entry.
    pub fn with_radix(n: usize, version: Version, layout: TwiddleLayout, radix_log2: u32) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "length must be a power of two ≥ 2"
        );
        assert!(
            (1..=MAX_RADIX_LOG2).contains(&radix_log2),
            "radix_log2 must be in 1..={MAX_RADIX_LOG2}"
        );
        let n_log2 = n.trailing_zeros();
        Self {
            n_log2,
            radix_log2: radix_log2.min(n_log2),
            version,
            layout,
            kind: TransformKind::C2C,
        }
    }

    /// Key for a non-C2C transform kind of logical size `n` (`2^rows_log2 ·
    /// 2^cols_log2` for 2D, the real length for r2c/c2r). Panics when the
    /// kind does not fit the size (see [`TransformKind::validate`]).
    /// Composite kinds clamp the radix to the scratchpad and the inner FFT
    /// size, so equivalent configurations share one cache entry.
    pub fn with_kind(
        kind: TransformKind,
        n: usize,
        version: Version,
        layout: TwiddleLayout,
        radix_log2: u32,
    ) -> Self {
        let mut key = Self::with_radix(n, version, layout, radix_log2);
        if let Err(why) = kind.validate(key.n_log2) {
            panic!("invalid transform kind: {why}");
        }
        if !kind.is_c2c() {
            key.radix_log2 = key
                .radix_log2
                .min(SCRATCHPAD_RADIX_LOG2)
                .min(kind.inner_n_log2(key.n_log2));
        }
        key.kind = kind;
        key
    }

    /// Transform size `N` (logical: the real length for real kinds,
    /// `rows · cols` for 2D).
    pub fn n(&self) -> usize {
        1 << self.n_log2
    }

    /// Complex slots of the execution buffer: `N` for C2C/2D, `N/2` packed
    /// slots for the real kinds.
    pub fn buffer_len(&self) -> usize {
        self.kind.buffer_len(self.n_log2)
    }
}

/// The version-specific precomputed schedule of a plan.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // exactly one per Plan; boxing would cost an indirection on the hot path
enum Schedule {
    /// Coarse-grain: the per-stage codelet-id lists fed to barrier phases.
    Phased(Vec<Vec<CodeletId>>),
    /// Fine-grain dataflow: the materialized graph and the seed order.
    Fine {
        graph: CsrProgram,
        seeds: Vec<CodeletId>,
    },
    /// Guided: early slice, barrier, late slice (each materialized), with
    /// the spec's seed orders carried explicitly — the materialized CSR
    /// embeds the graph's *default* seeds, which a tuned plan overrides.
    Guided {
        early: CsrProgram,
        early_seeds: Vec<CodeletId>,
        early_expected: usize,
        late: CsrProgram,
        late_seeds: Vec<CodeletId>,
        late_expected: usize,
    },
}

/// Per-stage execution tables, FFTW-style: everything a codelet's inner loop
/// would otherwise rederive per call, flattened into arrays the hot path
/// streams through sequentially.
#[derive(Debug)]
struct StageTable {
    /// Element indices, codelet-major: entry `idx · radix + slot` is the
    /// global index of buffer slot `slot` of codelet `idx`.
    gather: Vec<u32>,
    /// The stage's local `(lo, hi)` butterfly pattern (shared by every
    /// codelet of the stage), in execution order.
    pairs: Vec<(u32, u32)>,
    /// Twiddle factors, codelet-major: one per butterfly, `pairs.len()`
    /// values per codelet, in pattern order. Looked up (and, for hashed
    /// layouts, hashed) once at build time.
    twiddles: Vec<Complex64>,
}

impl StageTable {
    fn build(fft: &FftPlan, twiddles: &TwiddleTable, stage: usize) -> Self {
        let cps = fft.codelets_per_stage();
        let gather = workload::stage_gather(fft, stage);
        let pairs = workload::butterfly_pairs(fft, stage);
        let mut tw = Vec::with_capacity(cps * pairs.len());
        for idx in 0..cps {
            workload::append_twiddle_run(fft, twiddles, stage, idx, &mut tw);
        }
        Self {
            gather,
            pairs,
            twiddles: tw,
        }
    }

    fn bytes(&self) -> u64 {
        (self.gather.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(u32, u32)>()
            + self.twiddles.len() * std::mem::size_of::<Complex64>()) as u64
    }
}

/// Borrowed view of one stage's flattened execution tables — the exact
/// slices the `unsafe` hot path streams through. Exposed so external
/// verifiers (`fgcheck`'s pass 4) and the certificate digests can inspect
/// the lowering without re-deriving it.
#[derive(Debug, Clone, Copy)]
pub struct StageTableView<'a> {
    /// Element indices, codelet-major: entry `idx · radix + slot` is the
    /// global index of buffer slot `slot` of codelet `idx`.
    pub gather: &'a [u32],
    /// The stage's local `(lo, hi)` butterfly pattern, shared by every
    /// codelet of the stage, in execution order.
    pub pairs: &'a [(u32, u32)],
    /// Twiddle factors, codelet-major, `pairs.len()` per codelet.
    pub twiddles: &'a [Complex64],
}

/// What one codelet actually touched during a recorded execution
/// ([`Plan::execute_recorded`]): the observed counterpart of the workload
/// layer's static footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct TouchRecord {
    /// Global element indices gathered (buffer-slot order).
    pub reads: Vec<u32>,
    /// Global element indices scattered (buffer-slot order; the codelet
    /// writes exactly where it read).
    pub writes: Vec<u32>,
    /// Twiddle values consumed, one per butterfly, in pair-pattern order —
    /// bitwise the values the kernel multiplied by.
    pub twiddles: Vec<Complex64>,
}

/// The kind-specific extension of a composite plan: everything a non-C2C
/// transform needs beyond its inner complex FFT. `None` on 1D complex
/// plans, so the historical hot path pays nothing.
#[derive(Debug)]
enum KindExt {
    /// r2c/c2r: the precomputed untangle factors `e^{-2πik/N}` for
    /// `k = 0..=N/4` (satellite: derived once at build, reused across every
    /// call and batch member), and the direction.
    Real {
        untangle: Vec<Complex64>,
        inverse: bool,
    },
    /// 2D row–column: the plane shape, the transpose tile edge, and the
    /// column-wave plan (the outer plan's own tables drive the row wave).
    TwoD {
        rows_log2: u32,
        cols_log2: u32,
        block_log2: u32,
        col_plan: Box<Plan>,
    },
}

/// A fully precomputed, immutable, shareable FFT execution plan.
///
/// Construction ([`Plan::build`]) does all per-size derivation work;
/// [`Plan::execute`] only moves data. Plans are `Sync` and meant to live in
/// an `Arc` inside a [`Planner`] cache, shared by every thread transforming
/// that size.
///
/// A plan's [`TransformKind`] decides what the buffer holds and how the
/// inner complex FFT is wrapped: real kinds run the packed half-size FFT
/// plus an untangle/tangle pass, 2D runs a row wave, a blocked transpose, a
/// column wave, and a transpose back — all through the same certified
/// tables.
#[derive(Debug)]
pub struct Plan {
    key: PlanKey,
    tuning: Option<ScheduleTuning>,
    fft: FftPlan,
    twiddles: TwiddleTable,
    bitrev_swaps: Vec<(u32, u32)>,
    schedule: Schedule,
    tables: Vec<StageTable>,
    ext: Option<Box<KindExt>>,
}

impl Plan {
    /// Derive the complete plan for `key`. This is the *cold path* a cache
    /// miss pays once — and the per-call path `fft_in_place` pays always.
    pub fn build(key: PlanKey) -> Self {
        Self::build_tuned(key, None)
    }

    /// As [`Plan::build`], with the autotuner's schedule overrides applied
    /// (`None` builds the version's own schedule). Tuning reorders the
    /// initial codelet pool and may move the guided barrier; it never
    /// changes the arithmetic, so a tuned plan's results are bit-identical
    /// to the untuned plan's.
    pub fn build_tuned(key: PlanKey, tuning: Option<&ScheduleTuning>) -> Self {
        // The primary inner complex FFT: the whole transform for C2C, the
        // packed half for real kinds, the row transform for 2D.
        let inner_log2 = key.kind.inner_n_log2(key.n_log2);
        let fft = FftPlan::new(inner_log2, key.radix_log2.min(inner_log2));
        let twiddles = TwiddleTable::new(inner_log2, key.layout);
        let bitrev_swaps = bit_reverse_swaps(1usize << inner_log2);
        let ext = match key.kind {
            TransformKind::C2C => None,
            TransformKind::R2C | TransformKind::C2R => Some(Box::new(KindExt::Real {
                untangle: workload::untangle_table(key.n_log2),
                inverse: key.kind == TransformKind::C2R,
            })),
            TransformKind::C2C2D {
                rows_log2,
                cols_log2,
            } => {
                let block_log2 = tuning
                    .and_then(|t| t.transpose_block_log2)
                    .unwrap_or(DEFAULT_TRANSPOSE_BLOCK_LOG2)
                    .min(rows_log2)
                    .min(cols_log2);
                // The column wave runs on the seed schedule of its own size;
                // the outer tuning's pool order is shaped for the row plan.
                let col_key = PlanKey {
                    n_log2: rows_log2,
                    radix_log2: key.radix_log2.min(rows_log2),
                    version: key.version,
                    layout: key.layout,
                    kind: TransformKind::C2C,
                };
                Some(Box::new(KindExt::TwoD {
                    rows_log2,
                    cols_log2,
                    block_log2,
                    col_plan: Box::new(Plan::build(col_key)),
                }))
            }
        };
        // Materialize the workload layer's schedule spec — the same spec the
        // simulator runs and `fgcheck` verifies — into flat CSR arrays.
        let schedule = match ScheduleSpec::of_tuned(fft, key.version, tuning) {
            ScheduleSpec::Phased { phases } => Schedule::Phased(phases),
            ScheduleSpec::Fine { graph, seeds } => Schedule::Fine {
                graph: CsrProgram::materialize(&graph),
                seeds,
            },
            ScheduleSpec::Guided {
                early,
                early_seeds,
                late,
                late_seeds,
            } => Schedule::Guided {
                early_expected: early.expected(),
                early: CsrProgram::materialize(&early),
                early_seeds,
                late_expected: late.expected(),
                late: CsrProgram::materialize(&late),
                late_seeds,
            },
        };
        let tables = (0..fft.stages())
            .map(|stage| StageTable::build(&fft, &twiddles, stage))
            .collect();
        Self {
            key,
            tuning: tuning.cloned(),
            fft,
            twiddles,
            bitrev_swaps,
            schedule,
            tables,
            ext,
        }
    }

    /// Run one codelet of one copy through the precomputed stage tables.
    ///
    /// # Safety
    /// The caller upholds the dataflow discipline documented in
    /// [`crate::exec::shared`] for codelet `local` over `view`.
    #[inline]
    unsafe fn run_codelet(&self, view: &SharedData<'_>, local: usize) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.run_codelet_with(&ScalarKernel, view, local) }
    }

    /// As [`Plan::run_codelet`], but through an arbitrary
    /// [`CodeletKernel`]: the kernel receives exactly the table slices the
    /// scalar hot path streams, so a backend can swap the butterfly
    /// arithmetic without touching scheduling or table layout.
    ///
    /// # Safety
    /// The caller upholds the dataflow discipline documented in
    /// [`crate::exec::shared`] for codelet `local` over `view`.
    #[inline]
    pub(crate) unsafe fn run_codelet_with<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        view: &SharedData<'_>,
        local: usize,
    ) {
        let stage = self.fft.stage_of(local);
        let idx = self.fft.idx_of(local);
        let table = &self.tables[stage];
        let radix = 1usize << self.fft.radix_log2();
        let run = table.pairs.len();
        // SAFETY: forwarded from the caller's contract; the table slices are
        // in bounds by construction (codelet-major layout).
        unsafe {
            kernel.run_codelet(
                &table.gather[idx * radix..(idx + 1) * radix],
                &table.pairs,
                &table.twiddles[idx * run..(idx + 1) * run],
                view,
            );
        }
    }

    /// The identity this plan was built for.
    pub fn key(&self) -> PlanKey {
        self.key
    }

    /// The schedule overrides this plan was built with (`None` = the
    /// version's own schedule).
    pub fn tuning(&self) -> Option<&ScheduleTuning> {
        self.tuning.as_ref()
    }

    /// Logical transform size `N` (the real length for real kinds,
    /// `rows · cols` for 2D). The execution buffer holds
    /// [`Plan::buffer_len`] complex slots.
    pub fn n(&self) -> usize {
        self.key.n()
    }

    /// The transform kind this plan lowers.
    pub fn kind(&self) -> TransformKind {
        self.key.kind
    }

    /// Complex slots [`Plan::execute`] expects: `N` for C2C/2D, `N/2`
    /// packed slots for the real kinds.
    pub fn buffer_len(&self) -> usize {
        self.key.buffer_len()
    }

    /// The column-wave plan of a 2D transform (`None` for 1D kinds). The
    /// plan's own tables drive the row wave.
    pub fn col_plan(&self) -> Option<&Plan> {
        match self.ext.as_deref() {
            Some(KindExt::TwoD { col_plan, .. }) => Some(col_plan),
            _ => None,
        }
    }

    /// The precomputed untangle factors of a real-kind plan
    /// (`e^{-2πik/N}` for `k = 0..=N/4`; `None` for complex kinds).
    pub fn untangle(&self) -> Option<&[Complex64]> {
        match self.ext.as_deref() {
            Some(KindExt::Real { untangle, .. }) => Some(untangle),
            _ => None,
        }
    }

    /// Effective transpose tile edge exponent of a 2D plan (`None` for 1D
    /// kinds).
    pub fn transpose_block_log2(&self) -> Option<u32> {
        match self.ext.as_deref() {
            Some(KindExt::TwoD { block_log2, .. }) => Some(*block_log2),
            _ => None,
        }
    }

    /// The stage/codelet index algebra of the primary inner complex FFT
    /// (the row transform for 2D, the packed half-size FFT for real kinds).
    pub fn fft_plan(&self) -> &FftPlan {
        &self.fft
    }

    /// The precomputed twiddle table.
    pub fn twiddles(&self) -> &TwiddleTable {
        &self.twiddles
    }

    /// The flattened execution tables of `stage` (`0..fft_plan().stages()`),
    /// exactly as the hot path streams them.
    pub fn stage_table(&self, stage: usize) -> StageTableView<'_> {
        let table = &self.tables[stage];
        StageTableView {
            gather: &table.gather,
            pairs: &table.pairs,
            twiddles: &table.twiddles,
        }
    }

    /// The bit-reversal transposition list applied before the codelet
    /// stages.
    pub fn bitrev_swaps(&self) -> &[(u32, u32)] {
        &self.bitrev_swaps
    }

    /// Approximate bytes this plan keeps resident (twiddles, swap table,
    /// materialized schedule) — what a cache eviction would reclaim.
    pub fn resident_bytes(&self) -> u64 {
        let schedule = match &self.schedule {
            Schedule::Phased(phases) => phases
                .iter()
                .map(|p| (p.len() * std::mem::size_of::<CodeletId>()) as u64)
                .sum(),
            Schedule::Fine { graph, seeds } => {
                graph.resident_bytes() + (seeds.len() * std::mem::size_of::<CodeletId>()) as u64
            }
            Schedule::Guided { early, late, .. } => early.resident_bytes() + late.resident_bytes(),
        };
        let tables: u64 = self.tables.iter().map(StageTable::bytes).sum();
        let ext = match self.ext.as_deref() {
            None => 0,
            Some(KindExt::Real { untangle, .. }) => {
                (untangle.len() * std::mem::size_of::<Complex64>()) as u64
            }
            Some(KindExt::TwoD { col_plan, .. }) => col_plan.resident_bytes(),
        };
        self.twiddles.bytes() + (self.bitrev_swaps.len() * 8) as u64 + schedule + tables + ext
    }

    /// In-place forward transform of one buffer (`data.len()` must equal
    /// [`Plan::n`]) on `runtime`. Bit-identical to
    /// [`crate::exec::fft_in_place`] with the same key.
    pub fn execute(&self, data: &mut [Complex64], runtime: &Runtime) -> ExecStats {
        self.execute_with(&ScalarKernel, data, runtime)
    }

    /// As [`Plan::execute`], but with the butterfly arithmetic supplied by
    /// `kernel` — the entry point [`crate::backend`] routes through. With
    /// [`ScalarKernel`] this monomorphizes to exactly the historical path.
    pub(crate) fn execute_with<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        data: &mut [Complex64],
        runtime: &Runtime,
    ) -> ExecStats {
        assert_eq!(
            data.len(),
            self.buffer_len(),
            "buffer length must match the plan"
        );
        let start = Instant::now();
        let mut stats = match self.ext.as_deref() {
            None => self.execute_c2c_with(kernel, data, runtime),
            Some(KindExt::Real { untangle, inverse }) => {
                if *inverse {
                    tangle_span(data, untangle, 0, untangle.len());
                    let stats = self.execute_c2c_with(kernel, data, runtime);
                    finalize_span(data, 0, data.len());
                    stats
                } else {
                    let stats = self.execute_c2c_with(kernel, data, runtime);
                    untangle_span(data, untangle, 0, untangle.len());
                    stats
                }
            }
            Some(KindExt::TwoD {
                rows_log2,
                cols_log2,
                block_log2,
                col_plan,
            }) => self.execute_2d(
                kernel,
                data,
                runtime,
                1usize << rows_log2,
                1usize << cols_log2,
                1usize << block_log2,
                col_plan,
            ),
        };
        stats.elapsed = start.elapsed();
        stats
    }

    /// The inner complex wave of one buffer — the historical C2C hot path.
    fn execute_c2c_with<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        data: &mut [Complex64],
        runtime: &Runtime,
    ) -> ExecStats {
        debug_assert_eq!(data.len(), self.fft.n());
        apply_swaps_parallel(data, &self.bitrev_swaps, runtime.workers());
        let view = SharedData::new(data);
        // SAFETY: every schedule below upholds the dataflow discipline
        // documented in `exec::shared`.
        let body = |id: usize| unsafe { self.run_codelet_with(kernel, &view, id) };
        let stats = self.dispatch(runtime, body);
        debug_assert_eq!(stats.codelets, self.fft.total_codelets() as u64);
        stats
    }

    /// Row wave → blocked transpose → column wave → transpose back. Both
    /// waves run as batches over the plane's rows through the standard
    /// batched dispatch; the transposes move `block × block` tiles, the
    /// granularity the workload layer footprints.
    #[allow(clippy::too_many_arguments)]
    fn execute_2d<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        data: &mut [Complex64],
        runtime: &Runtime,
        rows: usize,
        cols: usize,
        block: usize,
        col_plan: &Plan,
    ) -> ExecStats {
        let mut stats = {
            let mut row_views: Vec<&mut [Complex64]> = data.chunks_exact_mut(cols).collect();
            self.execute_c2c_batch_with(kernel, &mut row_views, runtime)
        };
        let mut scratch = vec![Complex64::ZERO; data.len()];
        transpose_blocked(data, &mut scratch, rows, cols, block);
        let col_stats = {
            let mut col_views: Vec<&mut [Complex64]> = scratch.chunks_exact_mut(rows).collect();
            col_plan.execute_c2c_batch_with(kernel, &mut col_views, runtime)
        };
        transpose_blocked(&scratch, data, cols, rows, block);
        stats.codelets += col_stats.codelets;
        stats.barriers += col_stats.barriers + 2;
        stats.phases.extend(col_stats.phases);
        stats
    }

    /// As [`Plan::execute`], but with a *recording kernel*: alongside the
    /// transform, capture per codelet exactly what the hot path touched —
    /// the element indices it gathered and scattered and the twiddle values
    /// it consumed, straight from the materialized stage tables the real
    /// execution streams. The drift test compares these observations against
    /// the workload layer's static footprints codelet-for-codelet; any
    /// divergence between what we *say* a codelet touches and what execution
    /// *actually* touches fails loudly.
    pub fn execute_recorded(
        &self,
        data: &mut [Complex64],
        runtime: &Runtime,
    ) -> (ExecStats, Vec<TouchRecord>) {
        assert_eq!(
            data.len(),
            self.buffer_len(),
            "buffer length must match the plan"
        );
        let start = Instant::now();
        let mut records = Vec::new();
        let mut stats = match self.ext.as_deref() {
            None => self.record_c2c_into(data, runtime, 0, &mut records),
            Some(KindExt::Real { untangle, inverse }) => {
                let radix = self.fft.radix();
                let quarter = untangle.len() - 1;
                let pair_tasks = (quarter + 1).div_ceil(radix);
                if *inverse {
                    for u in 0..pair_tasks {
                        let (lo, hi) = (u * radix, ((u + 1) * radix).min(quarter + 1));
                        records.push(record_pair_task(data, untangle, lo, hi, true));
                    }
                    let stats = self.record_c2c_into(data, runtime, 0, &mut records);
                    let final_tasks = data.len().div_ceil(radix);
                    for u in 0..final_tasks {
                        let (lo, hi) = (u * radix, ((u + 1) * radix).min(data.len()));
                        finalize_span(data, lo, hi);
                        records.push(TouchRecord {
                            reads: (lo as u32..hi as u32).collect(),
                            writes: (lo as u32..hi as u32).collect(),
                            twiddles: Vec::new(),
                        });
                    }
                    stats
                } else {
                    let stats = self.record_c2c_into(data, runtime, 0, &mut records);
                    for u in 0..pair_tasks {
                        let (lo, hi) = (u * radix, ((u + 1) * radix).min(quarter + 1));
                        records.push(record_pair_task(data, untangle, lo, hi, false));
                    }
                    stats
                }
            }
            Some(KindExt::TwoD {
                rows_log2,
                cols_log2,
                block_log2,
                col_plan,
            }) => {
                let (rows, cols) = (1usize << rows_log2, 1usize << cols_log2);
                let (b, len) = (1usize << block_log2, data.len());
                let mut stats = ExecStats::default();
                for (r, row) in data.chunks_exact_mut(cols).enumerate() {
                    let s = self.record_c2c_into(row, runtime, (r * cols) as u32, &mut records);
                    stats.codelets += s.codelets;
                    stats.barriers += s.barriers;
                }
                let mut scratch = vec![Complex64::ZERO; len];
                record_transpose(
                    data,
                    &mut scratch,
                    rows,
                    cols,
                    b,
                    0,
                    len as u32,
                    &mut records,
                );
                for (c, col) in scratch.chunks_exact_mut(rows).enumerate() {
                    let shift = (len + c * rows) as u32;
                    let s = col_plan.record_c2c_into(col, runtime, shift, &mut records);
                    stats.codelets += s.codelets;
                    stats.barriers += s.barriers;
                }
                record_transpose(&scratch, data, cols, rows, b, len as u32, 0, &mut records);
                stats
            }
        };
        stats.elapsed = start.elapsed();
        (stats, records)
    }

    /// Run the inner complex wave while recording, per codelet, exactly
    /// what the hot path streamed from the stage tables; records land in
    /// `out` in codelet-id order with every element index shifted by
    /// `shift` (the composite plane/copy offset).
    fn record_c2c_into(
        &self,
        data: &mut [Complex64],
        runtime: &Runtime,
        shift: u32,
        out: &mut Vec<TouchRecord>,
    ) -> ExecStats {
        apply_swaps_parallel(data, &self.bitrev_swaps, runtime.workers());
        let view = SharedData::new(data);
        let radix = 1usize << self.fft.radix_log2();
        let slots: Vec<OnceLock<TouchRecord>> = (0..self.fft.total_codelets())
            .map(|_| OnceLock::new())
            .collect();
        let body = |id: usize| {
            let stage = self.fft.stage_of(id);
            let idx = self.fft.idx_of(id);
            let table = &self.tables[stage];
            let run = table.pairs.len();
            let gather: Vec<u32> = table.gather[idx * radix..(idx + 1) * radix]
                .iter()
                .map(|&g| g + shift)
                .collect();
            let record = TouchRecord {
                reads: gather.clone(),
                writes: gather,
                twiddles: table.twiddles[idx * run..(idx + 1) * run].to_vec(),
            };
            let set = slots[id].set(record).is_ok();
            debug_assert!(set, "codelet {id} fired twice");
            // SAFETY: the schedule upholds the dataflow discipline
            // documented in `exec::shared`, exactly as in `execute`.
            unsafe { self.run_codelet(&view, id) };
        };
        let stats = self.dispatch(runtime, body);
        out.extend(slots.into_iter().enumerate().map(|(id, slot)| {
            slot.into_inner()
                .unwrap_or_else(|| panic!("codelet {id} never fired"))
        }));
        stats
    }

    /// In-place forward transform of a whole **batch** of same-plan buffers
    /// through one runtime dispatch per schedule phase: worker-scope setup
    /// and dependence-counter allocation are paid once for the batch, not
    /// once per request. Every buffer receives exactly the result
    /// [`Plan::execute`] would produce.
    pub fn execute_batch(&self, buffers: &mut [&mut [Complex64]], runtime: &Runtime) -> ExecStats {
        self.execute_batch_with(&ScalarKernel, buffers, runtime)
    }

    /// As [`Plan::execute_batch`], but with the butterfly arithmetic
    /// supplied by `kernel` (see [`Plan::execute_with`]).
    pub(crate) fn execute_batch_with<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        buffers: &mut [&mut [Complex64]],
        runtime: &Runtime,
    ) -> ExecStats {
        match self.ext.as_deref() {
            None => self.execute_c2c_batch_with(kernel, buffers, runtime),
            Some(KindExt::Real { untangle, inverse }) => {
                let start = Instant::now();
                for buf in buffers.iter_mut() {
                    assert_eq!(
                        buf.len(),
                        self.buffer_len(),
                        "buffer length must match the plan"
                    );
                }
                let mut stats;
                if *inverse {
                    for buf in buffers.iter_mut() {
                        tangle_span(buf, untangle, 0, untangle.len());
                    }
                    stats = self.execute_c2c_batch_with(kernel, buffers, runtime);
                    for buf in buffers.iter_mut() {
                        finalize_span(buf, 0, buf.len());
                    }
                } else {
                    stats = self.execute_c2c_batch_with(kernel, buffers, runtime);
                    for buf in buffers.iter_mut() {
                        untangle_span(buf, untangle, 0, untangle.len());
                    }
                }
                stats.elapsed = start.elapsed();
                stats
            }
            Some(KindExt::TwoD { .. }) => {
                // Each 2D member is already a batched row/column wave; run
                // the members back to back.
                let start = Instant::now();
                let mut stats = ExecStats::default();
                for buf in buffers.iter_mut() {
                    let s = self.execute_with(kernel, buf, runtime);
                    stats.codelets += s.codelets;
                    stats.barriers += s.barriers;
                    stats.phases.extend(s.phases);
                }
                stats.elapsed = start.elapsed();
                stats
            }
        }
    }

    /// Batched inner complex wave — the historical C2C batch hot path.
    fn execute_c2c_batch_with<K: CodeletKernel + ?Sized>(
        &self,
        kernel: &K,
        buffers: &mut [&mut [Complex64]],
        runtime: &Runtime,
    ) -> ExecStats {
        let copies = buffers.len();
        if copies == 1 {
            let start = Instant::now();
            let mut stats = self.execute_c2c_with(kernel, buffers[0], runtime);
            stats.elapsed = start.elapsed();
            return stats;
        }
        let start = Instant::now();
        let mut stats = ExecStats::default();
        if copies == 0 {
            stats.elapsed = start.elapsed();
            return stats;
        }
        for buf in buffers.iter_mut() {
            assert_eq!(buf.len(), self.fft.n(), "buffer length must match the plan");
            apply_swaps_parallel(buf, &self.bitrev_swaps, runtime.workers());
        }
        let views: Vec<SharedData<'_>> = buffers.iter_mut().map(|b| SharedData::new(b)).collect();
        let total = self.fft.total_codelets();
        // SAFETY: ids of different copies address disjoint buffers; within a
        // copy the schedule upholds the usual dataflow discipline.
        let body =
            |id: usize| unsafe { self.run_codelet_with(kernel, &views[id / total], id % total) };
        match &self.schedule {
            Schedule::Phased(phases) => {
                // Stage s of every copy forms one barrier phase.
                let batched: Vec<Vec<CodeletId>> = phases
                    .iter()
                    .map(|p| {
                        let mut ids = Vec::with_capacity(p.len() * copies);
                        for k in 0..copies {
                            ids.extend(p.iter().map(|&c| k * total + c));
                        }
                        ids
                    })
                    .collect();
                let rs = runtime.run_phased(&batched, body);
                stats.barriers = rs.barriers;
                stats.codelets = rs.total_fired;
                stats.phases.push(rs);
            }
            Schedule::Fine { graph, seeds } => {
                let batch = BatchProgram::new(graph, copies);
                let batched_seeds = batch.batched_seeds(seeds);
                let rs =
                    runtime.run_with_seed_order(&batch, PoolDiscipline::Lifo, &batched_seeds, body);
                stats.codelets = rs.total_fired;
                stats.phases.push(rs);
            }
            Schedule::Guided {
                early,
                early_seeds,
                early_expected,
                late,
                late_seeds,
                late_expected,
            } => {
                let early_batch = BatchProgram::new(early, copies);
                let rs1 = runtime.run_partial(
                    &early_batch,
                    PoolDiscipline::Lifo,
                    &early_batch.batched_seeds(early_seeds),
                    early_expected * copies,
                    body,
                );
                let late_batch = BatchProgram::new(late, copies);
                let rs2 = runtime.run_partial(
                    &late_batch,
                    PoolDiscipline::Lifo,
                    &late_batch.batched_seeds(late_seeds),
                    late_expected * copies,
                    body,
                );
                stats.barriers = 1;
                stats.codelets = rs1.total_fired + rs2.total_fired;
                stats.phases.push(rs1);
                stats.phases.push(rs2);
            }
        }
        stats.elapsed = start.elapsed();
        debug_assert_eq!(stats.codelets, (total * copies) as u64);
        stats
    }

    /// Single-buffer dispatch over the precomputed schedule.
    fn dispatch(&self, runtime: &Runtime, body: impl Fn(usize) + Sync) -> ExecStats {
        let mut stats = ExecStats::default();
        match &self.schedule {
            Schedule::Phased(phases) => {
                let rs = runtime.run_phased(phases, body);
                stats.barriers = rs.barriers;
                stats.codelets = rs.total_fired;
                stats.phases.push(rs);
            }
            Schedule::Fine { graph, seeds } => {
                let rs = runtime.run_with_seed_order(graph, PoolDiscipline::Lifo, seeds, body);
                stats.codelets = rs.total_fired;
                stats.phases.push(rs);
            }
            Schedule::Guided {
                early,
                early_seeds,
                early_expected,
                late,
                late_seeds,
                late_expected,
            } => {
                let rs1 = runtime.run_partial(
                    early,
                    PoolDiscipline::Lifo,
                    early_seeds,
                    *early_expected,
                    &body,
                );
                // The join of the early phase's worker scope is the barrier.
                let rs2 = runtime.run_partial(
                    late,
                    PoolDiscipline::Lifo,
                    late_seeds,
                    *late_expected,
                    body,
                );
                stats.barriers = 1;
                stats.codelets = rs1.total_fired + rs2.total_fired;
                stats.phases.push(rs1);
                stats.phases.push(rs2);
            }
        }
        stats
    }
}

/// Untangle bins `lo..hi` of a packed half-complex forward result, in
/// place: `Z[k] = E[k] + i·O[k]` → `X[k] = E[k] + W_N^k·O[k]` for the pair
/// `(k, N/2−k)`, with `X[0]`/`X[N/2]` packed into slot 0. `table[k]` holds
/// `W_N^k = e^{-2πik/N}`; bins are the pair indices `0..=N/4`.
fn untangle_span(data: &mut [Complex64], table: &[Complex64], lo: usize, hi: usize) {
    let half = data.len();
    for k in lo..hi {
        if k == 0 {
            // DC and Nyquist are real; pack X[0] into .re and X[N/2] into .im.
            let z0 = data[0];
            data[0] = Complex64::new(z0.re + z0.im, z0.re - z0.im);
            continue;
        }
        let m = half - k;
        let zk = data[k];
        let zm = data[m];
        let e = (zk + zm.conj()).scale(0.5);
        let ot = (zk - zm.conj()).scale(0.5);
        // ot holds i·O[k]; fold the −i into the twiddle product.
        let o = Complex64::new(ot.im, -ot.re);
        let t = table[k] * o;
        data[k] = e + t;
        // X[N/2−k] = conj(E[k] − W_N^k·O[k]); for the self-paired bin
        // k = N/4 this coincides with the line above.
        data[m] = (e - t).conj();
    }
}

/// Inverse of [`untangle_span`], pre-conjugated for the conj-forward-conj
/// inverse: rebuilds `conj(Z[k])` from the packed half spectrum so a
/// *forward* inner FFT followed by [`finalize_span`] yields the real
/// signal (even samples in `.re`, odd in `.im`).
fn tangle_span(data: &mut [Complex64], table: &[Complex64], lo: usize, hi: usize) {
    let half = data.len();
    for k in lo..hi {
        if k == 0 {
            let v0 = data[0];
            // Z[0] = ((X[0]+X[N/2])/2, (X[0]−X[N/2])/2), conjugated.
            data[0] = Complex64::new((v0.re + v0.im) * 0.5, -(v0.re - v0.im) * 0.5);
            continue;
        }
        let m = half - k;
        let xk = data[k];
        let xm = data[m];
        let e = (xk + xm.conj()).scale(0.5);
        let ot = (xk - xm.conj()).scale(0.5);
        let w = table[k];
        // Z[k] = E + i·(conj(W)·ot); Z[N/2−k] = conj(E) + i·(W·conj(ot)).
        let ok = w.conj() * ot;
        let om = w * ot.conj();
        let zk = e + Complex64::new(-ok.im, ok.re);
        let zm = e.conj() + Complex64::new(-om.im, om.re);
        data[k] = zk.conj();
        // Self-paired bin k = N/4: zm == zk, so the second write is benign.
        data[m] = zm.conj();
    }
}

/// The c2r epilogue over elements `lo..hi`: conjugate and normalize by
/// `1/(N/2)` (the inner inverse's scale; the real-signal packing absorbs
/// the rest).
fn finalize_span(data: &mut [Complex64], lo: usize, hi: usize) {
    let scale = 1.0 / data.len() as f64;
    for v in &mut data[lo..hi] {
        *v = v.conj().scale(scale);
    }
}

/// Perform the untangle (or tangle) of one composite pair task — bins
/// `lo..hi` — while recording exactly the element and twiddle traffic the
/// workload layer footprints for it.
fn record_pair_task(
    data: &mut [Complex64],
    table: &[Complex64],
    lo: usize,
    hi: usize,
    inverse: bool,
) -> TouchRecord {
    let half = data.len();
    let mut touched = Vec::new();
    for k in lo..hi {
        touched.push(k as u32);
        let m = (half - k) % half;
        if m != k {
            touched.push(m as u32);
        }
    }
    let twiddles: Vec<Complex64> = (lo.max(1)..hi).map(|k| table[k]).collect();
    if inverse {
        tangle_span(data, table, lo, hi);
    } else {
        untangle_span(data, table, lo, hi);
    }
    TouchRecord {
        reads: touched.clone(),
        writes: touched,
        twiddles,
    }
}

/// Out-of-place transpose of a row-major `rows × cols` plane in
/// `block × block` tiles — the exact tile walk the workload layer
/// footprints, so the bank linter's model is the executed access pattern.
fn transpose_blocked(
    src: &[Complex64],
    dst: &mut [Complex64],
    rows: usize,
    cols: usize,
    block: usize,
) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for rb in (0..rows).step_by(block) {
        for cb in (0..cols).step_by(block) {
            for r in rb..rb + block {
                for c in cb..cb + block {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// As [`transpose_blocked`], recording one [`TouchRecord`] per tile in
/// tile-id order (`bi · cols/b + bj`): reads in source row-segment order,
/// writes in destination row-segment order, with the planes' element
/// offsets applied.
#[allow(clippy::too_many_arguments)]
fn record_transpose(
    src: &[Complex64],
    dst: &mut [Complex64],
    rows: usize,
    cols: usize,
    block: usize,
    src_shift: u32,
    dst_shift: u32,
    out: &mut Vec<TouchRecord>,
) {
    for rb in (0..rows).step_by(block) {
        for cb in (0..cols).step_by(block) {
            let mut reads = Vec::with_capacity(block * block);
            let mut writes = Vec::with_capacity(block * block);
            for r in rb..rb + block {
                for c in cb..cb + block {
                    reads.push(src_shift + (r * cols + c) as u32);
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            for c in cb..cb + block {
                for r in rb..rb + block {
                    writes.push(dst_shift + (c * rows + r) as u32);
                }
            }
            out.push(TouchRecord {
                reads,
                writes,
                twiddles: Vec::new(),
            });
        }
    }
}

/// One cache slot: a lazily-built plan. `OnceLock` gives single-flight for
/// free — the first `get_or_init` computes while concurrent callers block
/// on the slot and then share the `Arc`. `last_used` is a logical timestamp
/// (planner-global tick, not wall time) stamped on every lookup; eviction
/// drops the smallest.
#[derive(Debug, Default)]
struct Slot {
    plan: OnceLock<Arc<Plan>>,
    last_used: AtomicU64,
}

/// Number of independent cache shards. Requests for different keys usually
/// hash to different shards, so concurrent lookups don't serialize on one
/// lock; 16 is plenty for the handful of distinct sizes a service sees.
const SHARD_COUNT: usize = 16;

/// Default total plan capacity. Each `(n, version, layout, radix)` key is
/// one plan; 256 covers every size a realistic service mixes while bounding
/// worst-case residency (plans for huge N hold multi-megabyte tables).
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// Snapshot of a planner's cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Lookups answered by an already-built plan.
    pub hits: u64,
    /// Lookups that found no ready plan (includes single-flight waiters).
    pub misses: u64,
    /// Plans actually constructed (≤ misses; exactly one per distinct key).
    pub built: u64,
    /// Distinct plans currently cached.
    pub cached_plans: u64,
    /// Approximate bytes held by cached plans.
    pub resident_bytes: u64,
    /// Built plans dropped to keep the cache within its capacity.
    pub evictions: u64,
    /// Wisdom entries the planner refused to apply: ill-formed tunings and
    /// certificate verification failures (stale, tampered, foreign). Each
    /// rejection falls back to the seed schedule — never a panic.
    pub wisdom_rejections: u64,
}

impl PlannerStats {
    /// Fraction of lookups served warm, in `0.0..=1.0` (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, single-flight plan cache ("wisdom").
///
/// ```
/// use fgfft::planner::Planner;
/// use fgfft::{TwiddleLayout, Version};
///
/// let planner = Planner::new();
/// let a = planner.plan(1 << 10, Version::FineGuided, TwiddleLayout::Linear);
/// let b = planner.plan(1 << 10, Version::FineGuided, TwiddleLayout::Linear);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
/// assert_eq!(planner.stats().built, 1);
/// ```
#[derive(Debug)]
pub struct Planner {
    shards: Vec<Mutex<HashMap<PlanKey, Arc<Slot>>>>,
    /// Per-shard slot cap (total capacity spread over the shards).
    shard_capacity: usize,
    /// Logical clock for LRU stamps; bumped once per lookup.
    tick: AtomicU64,
    /// Tuned parameters consulted when building plans; `None` runs every
    /// version on its seed schedule.
    wisdom: Mutex<Option<Arc<Wisdom>>>,
    /// How much to trust wisdom certificates (see [`CertPolicy`]).
    cert_policy: Mutex<CertPolicy>,
    hits: AtomicU64,
    misses: AtomicU64,
    built: AtomicU64,
    evictions: AtomicU64,
    wisdom_rejections: AtomicU64,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// New empty cache with the default capacity
    /// ([`DEFAULT_PLAN_CAPACITY`] plans).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CAPACITY)
    }

    /// New empty cache holding at most `capacity` built plans (≥ 1),
    /// evicting least-recently-used plans beyond that. The bound is
    /// approximate: capacity is split across shards, and a shard never
    /// evicts a plan that is still being built.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "planner capacity must be at least 1");
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            shard_capacity: capacity.div_ceil(SHARD_COUNT),
            tick: AtomicU64::new(0),
            wisdom: Mutex::new(None),
            cert_policy: Mutex::new(CertPolicy::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            built: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            wisdom_rejections: AtomicU64::new(0),
        }
    }

    /// The process-wide planner shared by default [`crate::Fft`] engines, so
    /// independently constructed engines still share warm plans.
    pub fn shared() -> Arc<Planner> {
        static GLOBAL: OnceLock<Arc<Planner>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Planner::new())))
    }

    fn shard_of(key: &PlanKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// The plan for an `n`-point transform (power of two ≥ 2) under
    /// `version` and `layout`, with the default 64-point codelets — built on
    /// first request, served from cache afterwards.
    pub fn plan(&self, n: usize, version: Version, layout: TwiddleLayout) -> Arc<Plan> {
        self.plan_key(PlanKey::new(n, version, layout))
    }

    /// The plan for a non-C2C transform kind of logical size `n` under
    /// `version` and `layout` with the default codelets (see
    /// [`PlanKey::with_kind`]).
    pub fn plan_kind(
        &self,
        kind: TransformKind,
        n: usize,
        version: Version,
        layout: TwiddleLayout,
    ) -> Arc<Plan> {
        self.plan_key(PlanKey::with_kind(kind, n, version, layout, 6))
    }

    /// Whether the plan for `(n, version, layout)` under the default
    /// codelets is already built and cached — a warm lookup. Purely an
    /// observation: it never builds, never counts as a hit or miss, and
    /// never touches the LRU stamps. The serving layer's cold-plan gate
    /// polls this to decide how many requests may ride a cold dispatch.
    pub fn is_warm(&self, n: usize, version: Version, layout: TwiddleLayout) -> bool {
        self.is_warm_key(&PlanKey::new(n, version, layout))
    }

    /// As [`Planner::is_warm`] for an explicit [`PlanKey`] (any transform
    /// kind) — the kind-aware serving layer's cold-plan probe.
    pub fn is_warm_key(&self, key: &PlanKey) -> bool {
        self.shards[Self::shard_of(key)]
            .lock()
            .get(key)
            .is_some_and(|slot| slot.plan.get().is_some())
    }

    /// The plan for an explicit [`PlanKey`]. Single-flight: when several
    /// threads miss on the same key simultaneously, exactly one builds while
    /// the rest block on the slot and share the result. When the planner
    /// holds [`Wisdom`] with an entry for `key`, the plan is built with that
    /// entry's schedule tuning (same arithmetic, tuned execution order).
    pub fn plan_key(&self, key: PlanKey) -> Arc<Plan> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut map = self.shards[Self::shard_of(&key)].lock();
            match map.get(&key) {
                Some(slot) => {
                    if slot.plan.get().is_some() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Entry exists but the plan is still being built by
                        // another thread: this lookup did not get warm data.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    slot.last_used.store(now, Ordering::Relaxed);
                    Arc::clone(slot)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if map.len() >= self.shard_capacity {
                        self.evict_lru(&mut map);
                    }
                    let slot = Arc::new(Slot::default());
                    slot.last_used.store(now, Ordering::Relaxed);
                    map.insert(key, Arc::clone(&slot));
                    slot
                }
            }
        };
        // Out of the shard lock: a slow build must not block lookups of
        // other keys in the same shard... it holds only the slot.
        Arc::clone(slot.plan.get_or_init(|| {
            self.built.fetch_add(1, Ordering::Relaxed);
            let entry = self
                .wisdom
                .lock()
                .as_ref()
                .and_then(|w| w.lookup(&key))
                .cloned();
            Arc::new(self.build_checked(key, entry))
        }))
    }

    /// Build the plan for `key`, applying the wisdom entry's tuning only
    /// after it survives validation and (policy permitting) certificate
    /// verification. Every rejection is counted and degrades to the seed
    /// schedule — wisdom is data, and data must never panic the planner or
    /// steer the `unsafe` hot path unchecked.
    fn build_checked(&self, key: PlanKey, entry: Option<WisdomEntry>) -> Plan {
        let Some(entry) = entry else {
            return Plan::build(key);
        };
        // Validate against the primary *inner* plan — the pool the tuning's
        // permutation reorders (the packed half for real kinds, the row
        // transform for 2D).
        let inner_log2 = key.kind.inner_n_log2(key.n_log2);
        let fft = FftPlan::new(inner_log2, key.radix_log2.min(inner_log2));
        if entry.tuning.validate(&fft).is_err() {
            // An ill-formed permutation would panic inside
            // `ScheduleSpec::of_tuned`; refuse it here instead.
            self.wisdom_rejections.fetch_add(1, Ordering::Relaxed);
            return Plan::build(key);
        }
        let plan = Plan::build_tuned(key, Some(&entry.tuning));
        if *self.cert_policy.lock() == CertPolicy::Verify {
            if let Some(cert) = &entry.cert {
                if cert.verify_plan(&plan).is_err() {
                    self.wisdom_rejections.fetch_add(1, Ordering::Relaxed);
                    return Plan::build(key);
                }
            }
        }
        plan
    }

    /// Drop the least-recently-used *built* slot from a full shard. Slots
    /// still being built are never evicted (their builders and waiters hold
    /// the `Arc`; dropping the map entry would let a racing lookup build the
    /// same plan twice). If every slot is in-flight the shard briefly
    /// overshoots its cap instead.
    fn evict_lru(&self, map: &mut HashMap<PlanKey, Arc<Slot>>) {
        let victim = map
            .iter()
            .filter(|(_, slot)| slot.plan.get().is_some())
            .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
            .map(|(key, _)| *key);
        if let Some(key) = victim {
            map.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Install (or clear) the wisdom consulted when building plans, and
    /// drop every cached plan so subsequent lookups rebuild with the new
    /// tunings. In-flight `Arc<Plan>`s stay valid.
    pub fn set_wisdom(&self, wisdom: Option<Arc<Wisdom>>) {
        *self.wisdom.lock() = wisdom;
        self.clear();
    }

    /// The currently installed wisdom, if any.
    pub fn wisdom(&self) -> Option<Arc<Wisdom>> {
        self.wisdom.lock().clone()
    }

    /// Load a wisdom file and install it when usable. Tolerates every file
    /// failure mode (see [`Wisdom::load`]): on anything but
    /// [`WisdomStatus::Loaded`] the planner is left untouched and the
    /// status says why. Certificate verification is on by default — every
    /// entry must carry a certificate that passes
    /// [`crate::cert::Certificate::verify_static`]; opt out with
    /// [`Planner::set_cert_policy`]`(CertPolicy::Trust)` before loading.
    pub fn load_wisdom(&self, path: &std::path::Path) -> WisdomStatus {
        let (wisdom, status) = Wisdom::load_with(path, *self.cert_policy.lock());
        if status.is_loaded() {
            self.set_wisdom(Some(Arc::new(wisdom)));
        }
        status
    }

    /// Set how much to trust wisdom certificates on subsequent
    /// [`Planner::load_wisdom`] and plan builds. The default is
    /// [`CertPolicy::Verify`]; [`CertPolicy::Trust`] is the escape hatch
    /// for wisdom from older tooling. Cached plans are dropped so the new
    /// policy applies to every plan served afterwards.
    pub fn set_cert_policy(&self, policy: CertPolicy) {
        *self.cert_policy.lock() = policy;
        self.clear();
    }

    /// The current certificate policy.
    pub fn cert_policy(&self) -> CertPolicy {
        *self.cert_policy.lock()
    }

    /// Number of distinct keys cached (built or building).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (in-flight `Arc`s stay valid).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Cache-behavior snapshot.
    pub fn stats(&self) -> PlannerStats {
        let mut cached = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            for slot in shard.lock().values() {
                if let Some(plan) = slot.plan.get() {
                    cached += 1;
                    bytes += plan.resident_bytes();
                }
            }
        }
        PlannerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            built: self.built.load(Ordering::Relaxed),
            cached_plans: cached,
            resident_bytes: bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            wisdom_rejections: self.wisdom_rejections.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::exec::{fft_in_place, ExecConfig, SeedOrder};
    use crate::reference::recursive_fft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.29).sin(), (i as f64 * 0.17).cos()))
            .collect()
    }

    fn all_versions() -> Vec<Version> {
        vec![
            Version::Coarse,
            Version::CoarseHash,
            Version::Fine(SeedOrder::Natural),
            Version::FineHash(SeedOrder::Reversed),
            Version::FineGuided,
        ]
    }

    #[test]
    fn plan_execution_is_bit_identical_to_uncached_path() {
        let n = 1 << 13; // 3 stages at radix 64: guided split exercised
        let input = signal(n);
        for version in all_versions() {
            let mut uncached = input.clone();
            fft_in_place(
                &mut uncached,
                version,
                &ExecConfig {
                    workers: 4,
                    radix_log2: 6,
                },
            );
            let plan = Plan::build(PlanKey::new(n, version, version.layout()));
            let mut cached = input.clone();
            let stats = plan.execute(&mut cached, &Runtime::with_workers(4));
            assert_eq!(cached, uncached, "{}", version.name());
            assert_eq!(stats.codelets, plan.fft_plan().total_codelets() as u64);
        }
    }

    #[test]
    fn plan_matches_reference_across_sizes_and_radices() {
        for (n_log2, radix_log2) in [(1u32, 6u32), (5, 3), (7, 6), (10, 4), (13, 6)] {
            let n = 1usize << n_log2;
            let input = signal(n);
            let expect = recursive_fft(&input);
            let key =
                PlanKey::with_radix(n, Version::FineGuided, TwiddleLayout::Linear, radix_log2);
            let plan = Plan::build(key);
            let mut data = input;
            plan.execute(&mut data, &Runtime::with_workers(3));
            assert!(
                rms_error(&data, &expect) < 1e-9,
                "n=2^{n_log2} radix=2^{radix_log2}"
            );
        }
    }

    #[test]
    fn batch_execution_matches_single_execution() {
        let n = 1 << 13;
        for version in all_versions() {
            let plan = Plan::build(PlanKey::new(n, version, version.layout()));
            let rt = Runtime::with_workers(4);
            // Distinct inputs per batch member.
            let inputs: Vec<Vec<Complex64>> = (0..5)
                .map(|k| {
                    (0..n)
                        .map(|i| Complex64::new((i + k) as f64 * 0.01, (k as f64) - 2.0))
                        .collect()
                })
                .collect();
            let singles: Vec<Vec<Complex64>> = inputs
                .iter()
                .map(|inp| {
                    let mut d = inp.clone();
                    plan.execute(&mut d, &rt);
                    d
                })
                .collect();
            let mut batch = inputs.clone();
            {
                let mut views: Vec<&mut [Complex64]> =
                    batch.iter_mut().map(|b| b.as_mut_slice()).collect();
                let stats = plan.execute_batch(&mut views, &rt);
                assert_eq!(
                    stats.codelets,
                    (5 * plan.fft_plan().total_codelets()) as u64,
                    "{}",
                    version.name()
                );
            }
            assert_eq!(
                batch,
                singles,
                "{}: batch must be bit-identical",
                version.name()
            );
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let n = 1 << 7;
        let plan = Plan::build(PlanKey::new(n, Version::Coarse, TwiddleLayout::Linear));
        let rt = Runtime::with_workers(2);
        let stats = plan.execute_batch(&mut [], &rt);
        assert_eq!(stats.codelets, 0);
        let input = signal(n);
        let expect = recursive_fft(&input);
        let mut solo = input;
        plan.execute_batch(&mut [&mut solo], &rt);
        assert!(rms_error(&solo, &expect) < 1e-10);
    }

    #[test]
    fn planner_caches_and_counts() {
        let planner = Planner::new();
        let a = planner.plan(1 << 9, Version::Coarse, TwiddleLayout::Linear);
        let b = planner.plan(1 << 9, Version::Coarse, TwiddleLayout::Linear);
        let c = planner.plan(1 << 10, Version::Coarse, TwiddleLayout::Linear);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = planner.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.built, 2);
        assert_eq!(stats.cached_plans, 2);
        assert!(stats.resident_bytes > 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(planner.len(), 2);
        planner.clear();
        assert!(planner.is_empty());
        // Cleared: same key builds again.
        let d = planner.plan(1 << 9, Version::Coarse, TwiddleLayout::Linear);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn equivalent_radices_share_an_entry() {
        // radix_log2 is clamped to n_log2, so radix 6 and 7 on a 2^3-point
        // transform are the same plan.
        let planner = Planner::new();
        let a = planner.plan_key(PlanKey::with_radix(
            8,
            Version::Coarse,
            TwiddleLayout::Linear,
            6,
        ));
        let b = planner.plan_key(PlanKey::with_radix(
            8,
            Version::Coarse,
            TwiddleLayout::Linear,
            7,
        ));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(planner.stats().built, 1);
    }

    #[test]
    fn layout_is_part_of_the_key_but_not_the_result() {
        let planner = Planner::new();
        let n = 1 << 9;
        let lin = planner.plan(n, Version::Fine(SeedOrder::Natural), TwiddleLayout::Linear);
        let hash = planner.plan(
            n,
            Version::Fine(SeedOrder::Natural),
            TwiddleLayout::BitReversedHash,
        );
        assert!(!Arc::ptr_eq(&lin, &hash));
        let input = signal(n);
        let rt = Runtime::with_workers(2);
        let mut a = input.clone();
        let mut b = input;
        lin.execute(&mut a, &rt);
        hash.execute(&mut b, &rt);
        assert_eq!(a, b, "layout changes placement, not values");
    }

    /// Keys that are cheap to build (small N) and numerous enough that any
    /// shard gets several: every version × layout × size 2^2..2^10.
    fn cheap_keys() -> Vec<PlanKey> {
        let mut keys = Vec::new();
        for n_log2 in 2..=10u32 {
            for version in all_versions() {
                for layout in [
                    TwiddleLayout::Linear,
                    TwiddleLayout::BitReversedHash,
                    TwiddleLayout::MultiplicativeHash,
                ] {
                    keys.push(PlanKey::new(1 << n_log2, version, layout));
                }
            }
        }
        keys
    }

    #[test]
    fn cache_is_bounded_and_counts_evictions() {
        let planner = Planner::with_capacity(16); // one slot per shard
        let keys = cheap_keys();
        for &key in &keys {
            planner.plan_key(key);
        }
        assert!(
            planner.len() <= SHARD_COUNT,
            "cap is one per shard, got {}",
            planner.len()
        );
        let stats = planner.stats();
        assert_eq!(stats.evictions, (keys.len() - planner.len()) as u64);
        // The most recent key was inserted last, so nothing evicted it.
        let before = planner.stats().hits;
        planner.plan_key(*keys.last().unwrap());
        assert_eq!(planner.stats().hits, before + 1);
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        // Three cheap keys that share a shard, under a two-per-shard cap.
        let keys = cheap_keys();
        let shard = Planner::shard_of(&keys[0]);
        let same: Vec<PlanKey> = keys
            .into_iter()
            .filter(|k| Planner::shard_of(k) == shard)
            .take(3)
            .collect();
        assert_eq!(same.len(), 3, "need three keys in one shard");
        let (a, b, c) = (same[0], same[1], same[2]);

        let planner = Planner::with_capacity(2 * SHARD_COUNT);
        planner.plan_key(a);
        planner.plan_key(b);
        planner.plan_key(a); // refresh a: b becomes the LRU
        planner.plan_key(c); // full shard: evicts b, keeps a
        let built = planner.stats().built;
        planner.plan_key(a); // still resident
        assert_eq!(planner.stats().built, built, "refreshed key survived");
        planner.plan_key(b); // evicted: must rebuild
        assert_eq!(planner.stats().built, built + 1, "LRU key was dropped");
        assert_eq!(planner.stats().evictions, 2);
    }

    #[test]
    fn planner_builds_tuned_plans_from_wisdom() {
        let n = 1 << 12;
        let key = PlanKey::new(n, Version::Fine(SeedOrder::Natural), TwiddleLayout::Linear);
        let reversed: Vec<usize> = (0..(n >> 6)).rev().collect();
        let mut wisdom = Wisdom::new();
        wisdom.insert(crate::wisdom::WisdomEntry {
            key,
            tuning: ScheduleTuning {
                pool_order: Some(reversed.clone()),
                last_early: None,
                transpose_block_log2: None,
            },
            workers: 2,
            batch: 1,
            backend: Default::default(),
            median_ns: 1,
            seed_median_ns: 2,
            cert: None,
        });

        let planner = Planner::new();
        let untuned = planner.plan_key(key);
        assert!(untuned.tuning().is_none());

        planner.set_wisdom(Some(Arc::new(wisdom)));
        assert!(planner.is_empty(), "set_wisdom clears stale plans");
        let tuned = planner.plan_key(key);
        assert_eq!(
            tuned.tuning().and_then(|t| t.pool_order.as_deref()),
            Some(&reversed[..]),
            "plan was built with the wisdom entry's tuning"
        );
        // Tuning reorders execution, never arithmetic: bit-identical output.
        let input = signal(n);
        let rt = Runtime::with_workers(4);
        let mut plain = input.clone();
        untuned.execute(&mut plain, &rt);
        let mut fast = input;
        tuned.execute(&mut fast, &rt);
        assert_eq!(plain, fast);

        // Other keys are untouched by wisdom for this one.
        let other = planner.plan(n, Version::Coarse, TwiddleLayout::Linear);
        assert!(other.tuning().is_none());

        planner.set_wisdom(None);
        assert!(planner.wisdom().is_none());
        let back = planner.plan_key(key);
        assert!(
            back.tuning().is_none(),
            "clearing wisdom restores seed plans"
        );
    }

    #[test]
    fn ill_formed_wisdom_tuning_degrades_to_seed_plan_without_panic() {
        // The satellite bug: a pool order longer than the plan's pool used
        // to reach `ScheduleSpec::of_tuned` and panic mid-build. It must be
        // rejected, counted, and replaced by the seed schedule.
        let n = 1 << 10;
        let key = PlanKey::new(n, Version::Fine(SeedOrder::Natural), TwiddleLayout::Linear);
        let mut wisdom = Wisdom::new();
        wisdom.insert(crate::wisdom::WisdomEntry {
            key,
            tuning: ScheduleTuning {
                pool_order: Some((0..(n >> 6) + 5).collect()), // too long
                last_early: None,
                transpose_block_log2: None,
            },
            workers: 2,
            batch: 1,
            backend: Default::default(),
            median_ns: 1,
            seed_median_ns: 2,
            cert: None,
        });
        let planner = Planner::new();
        planner.set_wisdom(Some(Arc::new(wisdom)));
        let plan = planner.plan_key(key);
        assert!(plan.tuning().is_none(), "ill-formed tuning must not apply");
        assert_eq!(planner.stats().wisdom_rejections, 1);
        // The plan still works.
        let mut data = signal(n);
        plan.execute(&mut data, &Runtime::with_workers(2));
    }

    #[test]
    fn tampered_certificate_is_rejected_at_build_and_counted() {
        let n = 1 << 10;
        let key = PlanKey::new(n, Version::Fine(SeedOrder::Natural), TwiddleLayout::Linear);
        let tuning = ScheduleTuning {
            pool_order: Some((0..(n >> 6)).rev().collect()),
            last_early: None,
            transpose_block_log2: None,
        };
        let good = crate::cert::Certificate::for_plan(&Plan::build_tuned(key, Some(&tuning)))
            .expect("valid tuning certifies");
        let mut bad = good;
        bad.tables ^= 1; // breaks the seal
        let entry = |cert| crate::wisdom::WisdomEntry {
            key,
            tuning: tuning.clone(),
            workers: 2,
            batch: 1,
            backend: Default::default(),
            median_ns: 1,
            seed_median_ns: 2,
            cert: Some(cert),
        };

        let planner = Planner::new();
        let mut wisdom = Wisdom::new();
        wisdom.insert(entry(bad));
        planner.set_wisdom(Some(Arc::new(wisdom)));
        assert!(planner.plan_key(key).tuning().is_none());
        assert_eq!(planner.stats().wisdom_rejections, 1);

        // The untampered certificate verifies and the tuning applies.
        let mut wisdom = Wisdom::new();
        wisdom.insert(entry(good));
        planner.set_wisdom(Some(Arc::new(wisdom)));
        assert!(planner.plan_key(key).tuning().is_some());
        assert_eq!(planner.stats().wisdom_rejections, 1, "no new rejection");

        // Escape hatch: under Trust the tampered certificate is ignored.
        let mut wisdom = Wisdom::new();
        wisdom.insert(entry(bad));
        planner.set_wisdom(Some(Arc::new(wisdom)));
        planner.set_cert_policy(CertPolicy::Trust);
        assert!(planner.plan_key(key).tuning().is_some());
        assert_eq!(planner.stats().wisdom_rejections, 1);
    }

    /// Table-construction invariants at tiny sizes, single-threaded and
    /// execution-free on purpose: this is the subset CI runs under Miri
    /// (filter `miri_`), where every index that feeds the `unsafe` gather
    /// path is checked under the interpreter's strict provenance rules.
    #[test]
    fn miri_table_construction_is_in_bounds_and_partitioned() {
        for (n_log2, radix_log2) in [(4u32, 2u32), (6, 3), (8, 6)] {
            let n = 1usize << n_log2;
            let key = PlanKey::with_radix(
                n,
                Version::Fine(SeedOrder::Natural),
                TwiddleLayout::BitReversedHash,
                radix_log2,
            );
            let plan = Plan::build(key);
            let fft = plan.fft_plan();
            let radix = fft.radix();
            for stage in 0..fft.stages() {
                let table = plan.stage_table(stage);
                assert_eq!(table.gather.len(), fft.codelets_per_stage() * radix);
                assert_eq!(
                    table.twiddles.len(),
                    fft.codelets_per_stage() * table.pairs.len()
                );
                let mut seen = vec![false; n];
                for &g in table.gather {
                    assert!((g as usize) < n, "gather index {g} out of bounds");
                    assert!(!seen[g as usize], "element {g} gathered twice");
                    seen[g as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "stage {stage} misses elements");
                for &(lo, hi) in table.pairs {
                    assert!((lo as usize) < radix && (hi as usize) < radix);
                    assert_ne!(lo, hi);
                }
            }
            for &(a, b) in plan.bitrev_swaps() {
                assert!((a as usize) < n && (b as usize) < n);
            }
        }
    }

    #[test]
    fn miri_certificate_digests_are_stable_across_rebuilds() {
        let key = PlanKey::with_radix(1 << 6, Version::Coarse, TwiddleLayout::Linear, 3);
        let a = crate::cert::Certificate::for_plan(&Plan::build(key)).unwrap();
        let b = crate::cert::Certificate::for_plan(&Plan::build(key)).unwrap();
        assert_eq!(a, b, "digests are deterministic");
        b.verify_plan(&Plan::build(key)).unwrap();
    }

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.4 * (i as f64 * 1.1).cos())
            .collect()
    }

    fn pack_real(signal: &[f64]) -> Vec<Complex64> {
        signal
            .chunks_exact(2)
            .map(|p| Complex64::new(p[0], p[1]))
            .collect()
    }

    #[test]
    fn r2c_plan_matches_promoted_complex_dft() {
        for n in [4usize, 64, 1 << 12] {
            let x = real_signal(n);
            let promoted: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            let expect = recursive_fft(&promoted);
            let key = PlanKey::with_kind(
                TransformKind::R2C,
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            );
            let plan = Plan::build(key);
            assert_eq!(plan.buffer_len(), n / 2);
            let mut packed = pack_real(&x);
            plan.execute(&mut packed, &Runtime::with_workers(3));
            // Halfcomplex: slot 0 packs the (real) DC and Nyquist bins.
            assert!(
                (packed[0].re - expect[0].re).abs() < 1e-9 * n as f64,
                "n={n} DC"
            );
            assert!(
                (packed[0].im - expect[n / 2].re).abs() < 1e-9 * n as f64,
                "n={n} Nyquist"
            );
            for k in 1..n / 2 {
                assert!(
                    packed[k].dist(expect[k]) < 1e-9 * n as f64,
                    "n={n} bin {k}: {} vs {}",
                    packed[k],
                    expect[k]
                );
            }
        }
    }

    #[test]
    fn c2r_inverts_r2c_through_plans() {
        for n in [8usize, 256, 1 << 12] {
            let x = real_signal(n);
            let fwd = Plan::build(PlanKey::with_kind(
                TransformKind::R2C,
                n,
                Version::Coarse,
                TwiddleLayout::Linear,
                6,
            ));
            let inv = Plan::build(PlanKey::with_kind(
                TransformKind::C2R,
                n,
                Version::Coarse,
                TwiddleLayout::Linear,
                6,
            ));
            let rt = Runtime::with_workers(2);
            let mut buf = pack_real(&x);
            fwd.execute(&mut buf, &rt);
            inv.execute(&mut buf, &rt);
            let err: f64 = buf
                .iter()
                .flat_map(|v| [v.re, v.im])
                .zip(&x)
                .map(|(a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
                / n as f64;
            assert!(err < 1e-12, "n={n}: roundtrip error {err}");
        }
    }

    #[test]
    fn plan_2d_matches_row_column_reference() {
        for (rows_log2, cols_log2) in [(2u32, 3u32), (4, 4), (3, 6)] {
            let (rows, cols) = (1usize << rows_log2, 1usize << cols_log2);
            let n = rows * cols;
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.31).cos()))
                .collect();
            // Reference: 1D FFT each row, then each column.
            let mut expect = input.clone();
            for row in expect.chunks_exact_mut(cols) {
                let out = recursive_fft(row);
                row.copy_from_slice(&out);
            }
            for c in 0..cols {
                let col: Vec<Complex64> = (0..rows).map(|r| expect[r * cols + c]).collect();
                let out = recursive_fft(&col);
                for (r, v) in out.into_iter().enumerate() {
                    expect[r * cols + c] = v;
                }
            }
            let key = PlanKey::with_kind(
                TransformKind::C2C2D {
                    rows_log2,
                    cols_log2,
                },
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            );
            let plan = Plan::build(key);
            assert_eq!(plan.buffer_len(), n);
            assert!(plan.col_plan().is_some());
            let mut got = input;
            plan.execute(&mut got, &Runtime::with_workers(3));
            assert!(rms_error(&got, &expect) < 1e-9, "{rows}x{cols}");
        }
    }

    #[test]
    fn kind_batch_matches_single_execution() {
        let n = 1 << 10;
        let rt = Runtime::with_workers(3);
        for kind in [
            TransformKind::R2C,
            TransformKind::C2R,
            TransformKind::C2C2D {
                rows_log2: 4,
                cols_log2: 6,
            },
        ] {
            let plan = Plan::build(PlanKey::with_kind(
                kind,
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            ));
            let len = plan.buffer_len();
            let inputs: Vec<Vec<Complex64>> = (0..4)
                .map(|k| {
                    (0..len)
                        .map(|i| Complex64::new((i + k) as f64 * 0.01, (i * k) as f64 * 0.003))
                        .collect()
                })
                .collect();
            let singles: Vec<Vec<Complex64>> = inputs
                .iter()
                .map(|inp| {
                    let mut d = inp.clone();
                    plan.execute(&mut d, &rt);
                    d
                })
                .collect();
            let mut batch = inputs.clone();
            let mut views: Vec<&mut [Complex64]> =
                batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            plan.execute_batch(&mut views, &rt);
            drop(views);
            assert_eq!(batch, singles, "{kind:?}: batch must be bit-identical");
        }
    }

    #[test]
    fn tuned_transpose_block_changes_footprint_not_values() {
        let key = PlanKey::with_kind(
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 5,
            },
            1 << 10,
            Version::Coarse,
            TwiddleLayout::Linear,
            6,
        );
        let seed = Plan::build(key);
        assert_eq!(seed.transpose_block_log2(), Some(5));
        let tuning = ScheduleTuning {
            pool_order: None,
            last_early: None,
            transpose_block_log2: Some(3),
        };
        let tuned = Plan::build_tuned(key, Some(&tuning));
        assert_eq!(tuned.transpose_block_log2(), Some(3));
        let input = signal(1 << 10);
        let rt = Runtime::with_workers(2);
        let mut a = input.clone();
        let mut b = input;
        seed.execute(&mut a, &rt);
        tuned.execute(&mut b, &rt);
        assert_eq!(a, b, "tile size changes traffic shape, not values");
    }

    #[test]
    #[should_panic(expected = "invalid transform kind")]
    fn with_kind_rejects_mismatched_2d_shape() {
        PlanKey::with_kind(
            TransformKind::C2C2D {
                rows_log2: 3,
                cols_log2: 3,
            },
            1 << 10,
            Version::Coarse,
            TwiddleLayout::Linear,
            6,
        );
    }

    #[test]
    fn shared_planner_is_a_singleton() {
        let a = Planner::shared();
        let b = Planner::shared();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn key_rejects_non_power_of_two() {
        PlanKey::new(12, Version::Coarse, TwiddleLayout::Linear);
    }

    #[test]
    #[should_panic(expected = "buffer length must match")]
    fn execute_rejects_wrong_length() {
        let plan = Plan::build(PlanKey::new(8, Version::Coarse, TwiddleLayout::Linear));
        let mut data = signal(16);
        plan.execute(&mut data, &Runtime::with_workers(1));
    }
}
