//! Bluestein's algorithm (chirp-z): DFTs of **arbitrary** length on top of
//! the power-of-two codelet FFT.
//!
//! `X[k] = Σ_j x[j]·e^{−2πijk/N}` with `jk = (j² + k² − (k−j)²)/2` turns
//! the DFT into a convolution of the *chirped* input `a[j] = x[j]·w^{j²}`
//! with the chirp kernel `b[j] = w^{−j²}` (`w = e^{−πi/N}`), which is
//! evaluated with three power-of-two FFTs of length ≥ 2N−1. This closes
//! the library's only size restriction: every other entry point needs a
//! power of two.
//!
//! All three inner FFTs resolve through the engine's plan cache
//! ([`crate::Planner::shared`] by default), so they share one cached plan
//! per chirp length: the first arbitrary-length call of a size pays one
//! plan derivation, replays pay none.

use crate::api::Fft;
use crate::complex::Complex64;
use std::f64::consts::PI;

/// Forward DFT of arbitrary length via Bluestein's algorithm.
/// O(N log N) for any `N ≥ 1`.
///
/// ```
/// use fgfft::Complex64;
/// // A 7-point impulse: flat spectrum.
/// let mut x = vec![Complex64::ZERO; 7];
/// x[0] = Complex64::ONE;
/// let y = fgfft::dft(&x);
/// assert!(y.iter().all(|v| v.dist(Complex64::ONE) < 1e-10));
/// ```
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    dft_with(input, &Fft::new())
}

/// As [`dft`] with an explicit engine for the internal FFTs.
pub fn dft_with(input: &[Complex64], engine: &Fft) -> Vec<Complex64> {
    let n = input.len();
    assert!(n >= 1, "empty input");
    if n == 1 {
        return input.to_vec();
    }
    if n.is_power_of_two() {
        let mut out = input.to_vec();
        engine.forward(&mut out);
        return out;
    }

    let m = (2 * n - 1).next_power_of_two();
    // Chirp: w^{j²} with w = e^{−πi/N}. j² mod 2N keeps angles exact for
    // large j (e^{−πi·j²/N} has period 2N in j²).
    let chirp = |j: usize| -> Complex64 {
        let sq = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
        Complex64::expi(-PI * sq / n as f64)
    };

    // a = x·chirp, zero-padded.
    let mut a = vec![Complex64::ZERO; m];
    for (j, &x) in input.iter().enumerate() {
        a[j] = x * chirp(j);
    }
    // b = conj-chirp kernel, wrapped circularly so that the circular
    // convolution at lags 0..N equals the linear chirp sum.
    let mut b = vec![Complex64::ZERO; m];
    for j in 0..n {
        let v = chirp(j).conj();
        b[j] = v;
        if j != 0 {
            b[m - j] = v;
        }
    }

    engine.forward(&mut a);
    engine.forward(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    engine.inverse(&mut a);

    (0..n).map(|k| a[k] * chirp(k)).collect()
}

/// Inverse DFT of arbitrary length (normalized by 1/N).
pub fn idft(input: &[Complex64]) -> Vec<Complex64> {
    idft_with(input, &Fft::new())
}

/// As [`idft`] with an explicit engine.
pub fn idft_with(input: &[Complex64], engine: &Fft) -> Vec<Complex64> {
    let n = input.len();
    let conj: Vec<Complex64> = input.iter().map(|v| v.conj()).collect();
    let mut out = dft_with(&conj, engine);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.conj().scale(scale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::reference::{naive_dft, naive_idft};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.47).sin(), (i as f64 * 0.21).cos() * 0.6))
            .collect()
    }

    #[test]
    fn matches_naive_dft_for_awkward_sizes() {
        for n in [1usize, 2, 3, 5, 7, 12, 17, 100, 241, 1000] {
            let x = signal(n);
            let got = dft(&x);
            let expect = naive_dft(&x);
            let err = rms_error(&got, &expect);
            assert!(err < 1e-8 * (n as f64).max(1.0), "n={n}: rms {err}");
        }
    }

    #[test]
    fn power_of_two_path_still_works() {
        let x = signal(64);
        let got = dft(&x);
        let expect = naive_dft(&x);
        assert!(rms_error(&got, &expect) < 1e-9);
    }

    #[test]
    fn idft_inverts_dft_any_size() {
        for n in [3usize, 10, 97, 300] {
            let x = signal(n);
            let back = idft(&dft(&x));
            assert!(rms_error(&back, &x) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn idft_matches_naive() {
        let x = signal(29);
        let got = idft(&x);
        let expect = naive_idft(&x);
        assert!(rms_error(&got, &expect) < 1e-9);
    }

    #[test]
    fn prime_length_tone_detection() {
        // A pure tone at bin k0 of a prime-length DFT.
        let n = 101;
        let k0 = 17;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::expi(2.0 * PI * (k0 * j) as f64 / n as f64))
            .collect();
        let y = dft(&x);
        assert!(y[k0].dist(Complex64::new(n as f64, 0.0)) < 1e-7);
        for (k, v) in y.iter().enumerate() {
            if k != k0 {
                assert!(v.abs() < 1e-7, "leak at {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn large_prime_is_stable() {
        // Angles stay exact via the j² mod 2N reduction.
        let n = 4099; // prime
        let x = signal(n);
        let y = dft(&x);
        let back = idft(&y);
        assert!(rms_error(&back, &x) < 1e-9);
    }

    #[test]
    fn inner_convolution_ffts_share_one_cached_plan() {
        // n = 241 chirps up to m = 512: the a-FFT, b-FFT, and the inverse
        // all hit the same (512, version, layout) plan-cache entry.
        let planner = std::sync::Arc::new(crate::planner::Planner::new());
        let engine = Fft::new().with_planner(std::sync::Arc::clone(&planner));
        let x = signal(241);
        let first = dft_with(&x, &engine);
        assert_eq!(
            planner.stats().built,
            1,
            "three inner FFTs share one 512-point plan"
        );
        for _ in 0..3 {
            assert_eq!(dft_with(&x, &engine), first, "replays are bit-identical");
        }
        assert_eq!(planner.stats().built, 1, "replays build nothing");
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn rejects_empty() {
        dft(&[]);
    }
}
