//! Host-parallel FFT executors: the paper's five algorithm versions running
//! natively on the machine you are on, through the `codelet` runtime.
//!
//! | version | synchronization | twiddle layout |
//! |---------|-----------------|----------------|
//! | [`Version::Coarse`]     | barrier per stage (Alg. 1) | linear |
//! | [`Version::CoarseHash`] | barrier per stage | bit-reversal hashed |
//! | [`Version::Fine`]       | dataflow counters (Alg. 2) | linear |
//! | [`Version::FineHash`]   | dataflow counters | bit-reversal hashed |
//! | [`Version::FineGuided`] | two dataflow phases + 1 barrier (Alg. 3) | linear |
//!
//! All versions compute identical results (the codelet graph is
//! well-behaved, hence determinate); they differ in scheduling and in the
//! twiddle table's memory layout. On commodity hosts the layout has only
//! cache effects — the Cyclops-64 *bank* effects are reproduced by the
//! simulator workloads in [`crate::simwork`].

pub mod shared;

use crate::complex::Complex64;
use crate::planner::{Plan, PlanKey};
use crate::twiddle::TwiddleLayout;
use codelet::runtime::Runtime;
use codelet::stats::RunStats;
use std::time::Duration;

/// Initial ordering of the ready codelets in the pool. The paper observes
/// ("fine worst" vs "fine best") that this order alone swings performance;
/// these generators cover the orders the harness sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedOrder {
    /// Ids ascending — with a LIFO pool, execution starts from the *last*
    /// codelet.
    Natural,
    /// Ids descending.
    Reversed,
    /// All even positions, then all odd positions — a de-clustered order.
    EvenOdd,
    /// Deterministic pseudo-random shuffle of the given seed.
    Random(u64),
}

impl SeedOrder {
    /// Produce the permutation of `0..count`.
    pub fn order(&self, count: usize) -> Vec<usize> {
        match *self {
            SeedOrder::Natural => (0..count).collect(),
            SeedOrder::Reversed => (0..count).rev().collect(),
            SeedOrder::EvenOdd => (0..count).step_by(2).chain((1..count).step_by(2)).collect(),
            SeedOrder::Random(seed) => {
                let mut v: Vec<usize> = (0..count).collect();
                // splitmix64-driven Fisher-Yates: deterministic, seedable,
                // no external dependency.
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut next = || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                for i in (1..v.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    v.swap(i, j);
                }
                v
            }
        }
    }
}

/// The algorithm versions of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Coarse-grain synchronization: a barrier after every stage.
    Coarse,
    /// Coarse-grain with the hashed twiddle-factor layout.
    CoarseHash,
    /// Fine-grain dataflow with the given initial pool order.
    Fine(SeedOrder),
    /// Fine-grain with the hashed twiddle layout.
    FineHash(SeedOrder),
    /// Guided fine-grain: early stages, barrier, last two stages seeded in
    /// child-sharing-group order.
    FineGuided,
}

impl Version {
    /// The twiddle layout this version uses.
    pub fn layout(&self) -> TwiddleLayout {
        match self {
            Version::CoarseHash | Version::FineHash(_) => TwiddleLayout::BitReversedHash,
            _ => TwiddleLayout::Linear,
        }
    }

    /// Short name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Version::Coarse => "coarse",
            Version::CoarseHash => "coarse hash",
            Version::Fine(_) => "fine",
            Version::FineHash(_) => "fine hash",
            Version::FineGuided => "fine guided",
        }
    }

    /// All versions as swept by the paper's figures (fine orders chosen by
    /// the caller).
    pub fn paper_set(order: SeedOrder) -> [Version; 5] {
        [
            Version::Coarse,
            Version::CoarseHash,
            Version::Fine(order),
            Version::FineHash(order),
            Version::FineGuided,
        ]
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads.
    pub workers: usize,
    /// Codelet radix exponent (6 = the paper's 64-point codelets).
    pub radix_log2: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            radix_log2: 6,
        }
    }
}

impl ExecConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }
}

/// What one execution did (beyond transforming the data).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Wall-clock time including bit reversal.
    pub elapsed: Duration,
    /// Runtime statistics per dataflow/barrier phase.
    pub phases: Vec<RunStats>,
    /// Stage barriers executed (coarse: one per stage; guided: 1; fine: 0).
    pub barriers: u64,
    /// The codelets fired (sanity: equals `plan.total_codelets()`).
    pub codelets: u64,
}

/// Compute the in-place forward FFT of `data` (length must be a power of
/// two ≥ 2) with the chosen algorithm version.
///
/// This is the *uncached* path: the full [`Plan`] (twiddles, bit-reversal
/// swaps, materialized schedule) is derived per call and dropped afterwards.
/// Callers transforming the same size repeatedly should hold a
/// [`crate::planner::Planner`] (or a [`crate::Fft`] engine, which embeds one)
/// and amortize that derivation.
pub fn fft_in_place(data: &mut [Complex64], version: Version, config: &ExecConfig) -> ExecStats {
    let key = PlanKey::with_radix(data.len(), version, version.layout(), config.radix_log2);
    Plan::build(key).execute(data, &Runtime::with_workers(config.workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::reference::recursive_fft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.23).cos() * 0.5))
            .collect()
    }

    fn all_versions() -> Vec<Version> {
        vec![
            Version::Coarse,
            Version::CoarseHash,
            Version::Fine(SeedOrder::Natural),
            Version::Fine(SeedOrder::Reversed),
            Version::Fine(SeedOrder::Random(42)),
            Version::FineHash(SeedOrder::Natural),
            Version::FineGuided,
        ]
    }

    #[test]
    fn every_version_matches_reference() {
        let n = 1 << 13; // 3 stages at radix 64 → guided is exercised
        let input = signal(n);
        let expect = recursive_fft(&input);
        for version in all_versions() {
            for workers in [1, 4] {
                let mut data = input.clone();
                let cfg = ExecConfig {
                    workers,
                    radix_log2: 6,
                };
                let stats = fft_in_place(&mut data, version, &cfg);
                assert_eq!(stats.codelets, 3 * (n as u64 / 64));
                let err = rms_error(&data, &expect);
                assert!(
                    err < 1e-9,
                    "{} workers={workers}: rms {err}",
                    version.name()
                );
            }
        }
    }

    #[test]
    fn versions_agree_bitwise() {
        // Determinacy: all schedules produce the same floating-point values,
        // not merely close ones — the DAG fixes the arithmetic.
        let n = 1 << 12;
        let input = signal(n);
        let cfg = ExecConfig {
            workers: 4,
            radix_log2: 6,
        };
        let mut baseline = input.clone();
        fft_in_place(&mut baseline, Version::Coarse, &cfg);
        for version in all_versions() {
            let mut data = input.clone();
            fft_in_place(&mut data, version, &cfg);
            assert_eq!(data, baseline, "{}", version.name());
        }
    }

    #[test]
    fn coarse_uses_one_barrier_per_stage() {
        let n = 1 << 13;
        let mut data = signal(n);
        let stats = fft_in_place(&mut data, Version::Coarse, &ExecConfig::with_workers(2));
        assert_eq!(stats.barriers, 3);
    }

    #[test]
    fn guided_runs_two_phases() {
        let n = 1 << 13;
        let mut data = signal(n);
        let stats = fft_in_place(&mut data, Version::FineGuided, &ExecConfig::with_workers(2));
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.barriers, 1);
        assert_eq!(
            stats.phases[0].total_fired, 128,
            "early phase = stage 0 only for 3 stages"
        );
        assert_eq!(stats.phases[1].total_fired, 256);
    }

    #[test]
    fn guided_falls_back_for_small_transforms() {
        let n = 1 << 7; // 2 stages at radix 64
        let input = signal(n);
        let expect = recursive_fft(&input);
        let mut data = input;
        let stats = fft_in_place(&mut data, Version::FineGuided, &ExecConfig::with_workers(2));
        assert_eq!(stats.phases.len(), 1);
        assert!(rms_error(&data, &expect) < 1e-10);
    }

    #[test]
    fn small_radix_works() {
        let n = 1 << 10;
        let input = signal(n);
        let expect = recursive_fft(&input);
        for radix_log2 in [1u32, 3, 5] {
            let mut data = input.clone();
            let cfg = ExecConfig {
                workers: 3,
                radix_log2,
            };
            fft_in_place(&mut data, Version::Fine(SeedOrder::Natural), &cfg);
            assert!(rms_error(&data, &expect) < 1e-9, "radix 2^{radix_log2}");
        }
    }

    #[test]
    fn tiny_transform() {
        let input = signal(2);
        let expect = recursive_fft(&input);
        let mut data = input;
        fft_in_place(&mut data, Version::Coarse, &ExecConfig::with_workers(2));
        assert!(rms_error(&data, &expect) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = signal(12);
        fft_in_place(&mut data, Version::Coarse, &ExecConfig::default());
    }

    #[test]
    fn seed_orders_are_permutations() {
        for order in [
            SeedOrder::Natural,
            SeedOrder::Reversed,
            SeedOrder::EvenOdd,
            SeedOrder::Random(7),
        ] {
            let v = order.order(100);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "{order:?}");
        }
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        assert_eq!(
            SeedOrder::Random(3).order(50),
            SeedOrder::Random(3).order(50)
        );
        assert_ne!(
            SeedOrder::Random(3).order(50),
            SeedOrder::Random(4).order(50)
        );
    }
}
