//! Host-parallel FFT executors: the paper's five algorithm versions running
//! natively on the machine you are on, through the `codelet` runtime.
//!
//! | version | synchronization | twiddle layout |
//! |---------|-----------------|----------------|
//! | [`Version::Coarse`]     | barrier per stage (Alg. 1) | linear |
//! | [`Version::CoarseHash`] | barrier per stage | bit-reversal hashed |
//! | [`Version::Fine`]       | dataflow counters (Alg. 2) | linear |
//! | [`Version::FineHash`]   | dataflow counters | bit-reversal hashed |
//! | [`Version::FineGuided`] | two dataflow phases + 1 barrier (Alg. 3) | linear |
//!
//! All versions compute identical results (the codelet graph is
//! well-behaved, hence determinate); they differ in scheduling and in the
//! twiddle table's memory layout. On commodity hosts the layout has only
//! cache effects — the Cyclops-64 *bank* effects are reproduced by the
//! simulator workloads in [`crate::simwork`].

pub mod shared;

use crate::complex::Complex64;
use crate::planner::{Plan, PlanKey};
use codelet::runtime::Runtime;
use codelet::stats::RunStats;
use std::time::Duration;

// The algorithm versions and pool seed orders are defined in the workload
// layer (the single authority for the decomposition) and re-exported here,
// where they have always been part of the executor API.
pub use crate::workload::{SeedOrder, Version};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads.
    pub workers: usize,
    /// Codelet radix exponent (6 = the paper's 64-point codelets).
    pub radix_log2: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            radix_log2: 6,
        }
    }
}

impl ExecConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }
}

/// What one execution did (beyond transforming the data).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Wall-clock time including bit reversal.
    pub elapsed: Duration,
    /// Runtime statistics per dataflow/barrier phase.
    pub phases: Vec<RunStats>,
    /// Stage barriers executed (coarse: one per stage; guided: 1; fine: 0).
    pub barriers: u64,
    /// The codelets fired (sanity: equals `plan.total_codelets()`).
    pub codelets: u64,
}

/// Compute the in-place forward FFT of `data` (length must be a power of
/// two ≥ 2) with the chosen algorithm version.
///
/// This is the *uncached* path: the full [`Plan`] (twiddles, bit-reversal
/// swaps, materialized schedule) is derived per call and dropped afterwards.
/// Callers transforming the same size repeatedly should hold a
/// [`crate::planner::Planner`] (or a [`crate::Fft`] engine, which embeds one)
/// and amortize that derivation.
pub fn fft_in_place(data: &mut [Complex64], version: Version, config: &ExecConfig) -> ExecStats {
    let key = PlanKey::with_radix(data.len(), version, version.layout(), config.radix_log2);
    Plan::build(key).execute(data, &Runtime::with_workers(config.workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::reference::recursive_fft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.23).cos() * 0.5))
            .collect()
    }

    fn all_versions() -> Vec<Version> {
        vec![
            Version::Coarse,
            Version::CoarseHash,
            Version::Fine(SeedOrder::Natural),
            Version::Fine(SeedOrder::Reversed),
            Version::Fine(SeedOrder::Random(42)),
            Version::FineHash(SeedOrder::Natural),
            Version::FineGuided,
        ]
    }

    #[test]
    fn every_version_matches_reference() {
        let n = 1 << 13; // 3 stages at radix 64 → guided is exercised
        let input = signal(n);
        let expect = recursive_fft(&input);
        for version in all_versions() {
            for workers in [1, 4] {
                let mut data = input.clone();
                let cfg = ExecConfig {
                    workers,
                    radix_log2: 6,
                };
                let stats = fft_in_place(&mut data, version, &cfg);
                assert_eq!(stats.codelets, 3 * (n as u64 / 64));
                let err = rms_error(&data, &expect);
                assert!(
                    err < 1e-9,
                    "{} workers={workers}: rms {err}",
                    version.name()
                );
            }
        }
    }

    #[test]
    fn versions_agree_bitwise() {
        // Determinacy: all schedules produce the same floating-point values,
        // not merely close ones — the DAG fixes the arithmetic.
        let n = 1 << 12;
        let input = signal(n);
        let cfg = ExecConfig {
            workers: 4,
            radix_log2: 6,
        };
        let mut baseline = input.clone();
        fft_in_place(&mut baseline, Version::Coarse, &cfg);
        for version in all_versions() {
            let mut data = input.clone();
            fft_in_place(&mut data, version, &cfg);
            assert_eq!(data, baseline, "{}", version.name());
        }
    }

    #[test]
    fn coarse_uses_one_barrier_per_stage() {
        let n = 1 << 13;
        let mut data = signal(n);
        let stats = fft_in_place(&mut data, Version::Coarse, &ExecConfig::with_workers(2));
        assert_eq!(stats.barriers, 3);
    }

    #[test]
    fn guided_runs_two_phases() {
        let n = 1 << 13;
        let mut data = signal(n);
        let stats = fft_in_place(&mut data, Version::FineGuided, &ExecConfig::with_workers(2));
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.barriers, 1);
        assert_eq!(
            stats.phases[0].total_fired, 128,
            "early phase = stage 0 only for 3 stages"
        );
        assert_eq!(stats.phases[1].total_fired, 256);
    }

    #[test]
    fn guided_falls_back_for_small_transforms() {
        let n = 1 << 7; // 2 stages at radix 64
        let input = signal(n);
        let expect = recursive_fft(&input);
        let mut data = input;
        let stats = fft_in_place(&mut data, Version::FineGuided, &ExecConfig::with_workers(2));
        assert_eq!(stats.phases.len(), 1);
        assert!(rms_error(&data, &expect) < 1e-10);
    }

    #[test]
    fn small_radix_works() {
        let n = 1 << 10;
        let input = signal(n);
        let expect = recursive_fft(&input);
        for radix_log2 in [1u32, 3, 5] {
            let mut data = input.clone();
            let cfg = ExecConfig {
                workers: 3,
                radix_log2,
            };
            fft_in_place(&mut data, Version::Fine(SeedOrder::Natural), &cfg);
            assert!(rms_error(&data, &expect) < 1e-9, "radix 2^{radix_log2}");
        }
    }

    #[test]
    fn tiny_transform() {
        let input = signal(2);
        let expect = recursive_fft(&input);
        let mut data = input;
        fft_in_place(&mut data, Version::Coarse, &ExecConfig::with_workers(2));
        assert!(rms_error(&data, &expect) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut data = signal(12);
        fft_in_place(&mut data, Version::Coarse, &ExecConfig::default());
    }

    #[test]
    fn seed_orders_are_permutations() {
        for order in [
            SeedOrder::Natural,
            SeedOrder::Reversed,
            SeedOrder::EvenOdd,
            SeedOrder::Random(7),
        ] {
            let v = order.order(100);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "{order:?}");
        }
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        assert_eq!(
            SeedOrder::Random(3).order(50),
            SeedOrder::Random(3).order(50)
        );
        assert_ne!(
            SeedOrder::Random(3).order(50),
            SeedOrder::Random(4).order(50)
        );
    }
}
