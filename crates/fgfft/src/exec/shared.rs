//! A shared-mutable view of the data array for dataflow-disciplined access.
//!
//! The FFT executors run codelets from many threads over one `&mut
//! [Complex64]`. Rust cannot see that the dataflow discipline makes those
//! accesses exclusive, so the executors go through this raw view. The
//! safety argument, once, in full:
//!
//! * Within one stage, codelets own **disjoint** element sets (the plan's
//!   `elements_partition_every_stage` property).
//! * Across stages, if codelets `a` (stage `j`) and `b` (stage `j' > j`)
//!   touch a common element `e`, then the ownership chain of `e` through
//!   stages `j, j+1, …, j'` is a dependence path from `a` to `b` (each
//!   owner is a child of the previous one because they share `e`).
//!   The runtime fires `b` only after that whole path completed, with
//!   acquire/release edges through the dependence counters and the ready
//!   pool, so `a`'s writes are visible to and ordered before `b`'s accesses.
//! * Phased executors (coarse, guided) separate their phases by barriers /
//!   thread-scope joins, which are stronger than the above.
//!
//! Hence no two threads ever access the same element concurrently, and
//! every read observes the writes of the codelet that produced the value.

use crate::complex::Complex64;
use crate::kernel;
use crate::plan::{FftPlan, MAX_RADIX_LOG2};
use crate::twiddle::TwiddleTable;
use std::marker::PhantomData;

/// Raw shared view over the FFT data array. See the module docs for the
/// access discipline that makes the `unsafe` accessors sound.
pub struct SharedData<'a> {
    ptr: *mut Complex64,
    len: usize,
    _marker: PhantomData<&'a mut [Complex64]>,
}

// SAFETY: the view is only used under the dataflow discipline documented in
// the module docs; the pointer itself is freely sendable/shareable.
unsafe impl Sync for SharedData<'_> {}
unsafe impl Send for SharedData<'_> {}

impl<'a> SharedData<'a> {
    /// Wrap a uniquely-borrowed slice. The borrow is held for `'a`, so no
    /// safe code can alias the data while views exist.
    pub fn new(data: &'a mut [Complex64]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i < len`, and no thread writes element `i` concurrently.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> Complex64 {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread accesses element `i` concurrently.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: Complex64) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v }
    }
}

/// Execute one codelet against the shared view: gather → compute → scatter.
///
/// # Safety
/// The caller must uphold the dataflow discipline of the module docs for
/// the elements of codelet `(stage, idx)` — i.e. all parents have completed
/// (with proper synchronization edges) and no concurrent codelet shares any
/// element.
pub unsafe fn execute_codelet_shared(
    plan: &FftPlan,
    twiddles: &TwiddleTable,
    data: &SharedData<'_>,
    stage: usize,
    idx: usize,
) {
    debug_assert_eq!(data.len(), plan.n());
    let mut buf = [Complex64::ZERO; 1 << MAX_RADIX_LOG2];
    plan.for_each_element(stage, idx, |slot, e| {
        // SAFETY: per the function contract, this codelet has exclusive
        // access to its elements.
        buf[slot] = unsafe { data.read(e) };
    });
    kernel::compute_in_buffer(plan, twiddles, &mut buf, stage, idx);
    plan.for_each_element(stage, idx, |slot, e| {
        // SAFETY: as above.
        unsafe { data.write(e, buf[slot]) };
    });
}

/// Execute one codelet from *precomputed* plan tables: gather through a flat
/// element-index slice, replay the stage's butterfly pattern against a
/// per-codelet twiddle run, scatter back. Bitwise-identical to
/// [`execute_codelet_shared`], but with zero per-call index algebra — the
/// tables are materialized once at plan-build time (see
/// [`crate::planner::Plan`]).
///
/// `gather` holds the codelet's element indices by buffer slot; `pairs` the
/// stage's local `(lo, hi)` butterfly pattern in execution order; `twiddles`
/// one factor per butterfly in the same order (`pairs.len() ==
/// twiddles.len()`).
///
/// # Safety
/// Same contract as [`execute_codelet_shared`]: the caller upholds the
/// dataflow discipline for the elements listed in `gather`, and every index
/// in `gather` is within `data`.
pub unsafe fn execute_codelet_tabled(
    gather: &[u32],
    pairs: &[(u32, u32)],
    twiddles: &[Complex64],
    data: &SharedData<'_>,
) {
    debug_assert_eq!(pairs.len(), twiddles.len());
    debug_assert!(gather.len() <= 1 << MAX_RADIX_LOG2);
    let mut buf = [Complex64::ZERO; 1 << MAX_RADIX_LOG2];
    for (slot, &e) in gather.iter().enumerate() {
        // SAFETY: per the function contract, this codelet has exclusive
        // access to its elements.
        buf[slot] = unsafe { data.read(e as usize) };
    }
    for (&(lo, hi), &w) in pairs.iter().zip(twiddles) {
        let (a, c) = kernel::butterfly(buf[lo as usize], buf[hi as usize], w);
        buf[lo as usize] = a;
        buf[hi as usize] = c;
    }
    for (slot, &e) in gather.iter().enumerate() {
        // SAFETY: as above.
        unsafe { data.write(e as usize, buf[slot]) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::twiddle::TwiddleLayout;

    #[test]
    fn shared_view_reads_and_writes() {
        let mut v = vec![Complex64::ZERO; 4];
        let s = SharedData::new(&mut v);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        unsafe {
            s.write(2, Complex64::new(1.0, -1.0));
            assert_eq!(s.read(2), Complex64::new(1.0, -1.0));
            assert_eq!(s.read(0), Complex64::ZERO);
        }
    }

    #[test]
    fn shared_codelet_matches_safe_kernel() {
        let plan = FftPlan::new(9, 6);
        let tw = TwiddleTable::new(9, TwiddleLayout::Linear);
        let input: Vec<Complex64> = (0..512)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut a = input.clone();
        let mut b = input;
        for idx in 0..plan.codelets_per_stage() {
            kernel::execute_codelet(&plan, &tw, &mut a, 0, idx);
        }
        {
            let view = SharedData::new(&mut b);
            for idx in 0..plan.codelets_per_stage() {
                unsafe { execute_codelet_shared(&plan, &tw, &view, 0, idx) };
            }
        }
        assert!(rms_error(&a, &b) < 1e-15);
    }
}
