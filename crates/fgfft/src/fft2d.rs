//! 2-D FFT by row–column decomposition, parallelized through the codelet
//! runtime — the second workload of Chen et al.'s Cyclops-64 FFT study
//! (the paper's Sec. III-B background), and the shape used by the image-
//! filtering example.
//!
//! Layout: row-major `rows × cols`, both powers of two. The transform runs
//! one 1-D FFT per row (each row is one codelet), transposes, runs one FFT
//! per former column, and transposes back — cache-friendly unit-stride
//! inner loops in every phase.

use crate::bitrev::bit_reverse_permute;
use crate::complex::Complex64;
use crate::twiddle::{TwiddleLayout, TwiddleTable};
use codelet::graph::ExplicitGraph;
use codelet::runtime::{Runtime, RuntimeConfig};
use std::f64::consts::PI;

/// Serial in-place radix-2 FFT over one contiguous row, using a
/// precomputed table (shared across rows).
pub fn fft_row(data: &mut [Complex64], table: &TwiddleTable) {
    let n = data.len();
    debug_assert_eq!(n, 1usize << table.n_log2());
    bit_reverse_permute(data);
    let log_n = table.n_log2();
    for l in 0..log_n {
        let span = 1usize << l;
        let stride = 1usize << (log_n - l - 1);
        for base in (0..n).step_by(span * 2) {
            for j in 0..span {
                let w = table.get(j * stride);
                let lo = base + j;
                let hi = lo + span;
                let t = w * data[hi];
                let u = data[lo];
                data[lo] = u + t;
                data[hi] = u - t;
            }
        }
    }
}

/// A 2-D FFT engine for a fixed shape.
///
/// ```
/// use fgfft::{Complex64, Fft2d};
/// let engine = Fft2d::with_workers(4, 8, 2);
/// let mut img = vec![Complex64::ZERO; 32];
/// img[0] = Complex64::ONE;                 // 2-D impulse
/// engine.forward(&mut img);
/// assert!(img.iter().all(|v| v.dist(Complex64::ONE) < 1e-12));
/// ```
#[derive(Debug)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_table: TwiddleTable,
    col_table: TwiddleTable,
    runtime: Runtime,
}

impl Fft2d {
    /// Plan a `rows × cols` transform (both powers of two ≥ 2) on all
    /// available cores.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_workers(
            rows,
            cols,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Plan with an explicit worker count.
    pub fn with_workers(rows: usize, cols: usize, workers: usize) -> Self {
        assert!(
            rows >= 2 && cols >= 2 && rows.is_power_of_two() && cols.is_power_of_two(),
            "rows and cols must be powers of two >= 2"
        );
        Self {
            rows,
            cols,
            row_table: TwiddleTable::new(cols.trailing_zeros(), TwiddleLayout::Linear),
            col_table: TwiddleTable::new(rows.trailing_zeros(), TwiddleLayout::Linear),
            runtime: Runtime::new(RuntimeConfig::with_workers(workers)),
        }
    }

    /// Shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place forward 2-D transform of row-major `data`
    /// (`data.len() == rows·cols`).
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        // Row pass.
        self.parallel_rows(data, self.rows, self.cols, &self.row_table);
        // Column pass via transpose.
        let mut t = vec![Complex64::ZERO; data.len()];
        transpose(data, &mut t, self.rows, self.cols);
        self.parallel_rows(&mut t, self.cols, self.rows, &self.col_table);
        transpose(&t, data, self.cols, self.rows);
    }

    /// In-place inverse 2-D transform (normalized by `1/(rows·cols)`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / (self.rows * self.cols) as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }

    /// Transform `height` rows of `width` in parallel: one codelet per row.
    fn parallel_rows(
        &self,
        data: &mut [Complex64],
        height: usize,
        width: usize,
        table: &TwiddleTable,
    ) {
        // Rows are disjoint `&mut` chunks; hand each codelet its own slice
        // through a raw base pointer (same discipline as exec::shared).
        struct RowView(*mut Complex64, usize);
        unsafe impl Sync for RowView {}
        let view = RowView(data.as_mut_ptr(), width);
        // Capture the whole view by reference (2021 disjoint capture would
        // otherwise capture the raw pointer field, which is not Sync).
        let view = &view;
        let graph = ExplicitGraph::new(height);
        self.runtime
            .run(&graph, codelet::pool::PoolDiscipline::WorkSteal, |row| {
                // SAFETY: codelet `row` is the only accessor of
                // rows[row*width .. (row+1)*width]; rows partition `data`.
                let slice =
                    unsafe { std::slice::from_raw_parts_mut(view.0.add(row * view.1), view.1) };
                fft_row(slice, table);
            });
    }
}

/// Out-of-place transpose: `dst[c][r] = src[r][c]` for `rows × cols` src.
/// Blocked for cache friendliness.
pub fn transpose(src: &[Complex64], dst: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    const BLOCK: usize = 32;
    for rb in (0..rows).step_by(BLOCK) {
        for cb in (0..cols).step_by(BLOCK) {
            for r in rb..(rb + BLOCK).min(rows) {
                for c in cb..(cb + BLOCK).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Naive O((RC)²) 2-D DFT: the correctness oracle.
pub fn naive_dft2d(input: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(input.len(), rows * cols);
    let mut out = vec![Complex64::ZERO; rows * cols];
    for kr in 0..rows {
        for kc in 0..cols {
            let mut acc = Complex64::ZERO;
            for r in 0..rows {
                for c in 0..cols {
                    let angle = -2.0 * PI * (kr * r) as f64 / rows as f64
                        - 2.0 * PI * (kc * c) as f64 / cols as f64;
                    acc += input[r * cols + c] * Complex64::expi(angle);
                }
            }
            out[kr * cols + kc] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| {
                Complex64::new(
                    ((i * 31 + 7) % 64) as f64 / 32.0 - 1.0,
                    ((i * 17 + 3) % 64) as f64 / 32.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (r, c) in [(4usize, 4usize), (8, 4), (4, 16), (16, 16)] {
            let x = image(r, c);
            let expect = naive_dft2d(&x, r, c);
            let mut got = x;
            Fft2d::with_workers(r, c, 3).forward(&mut got);
            assert!(rms_error(&got, &expect) < 1e-9, "{r}x{c}");
        }
    }

    #[test]
    fn roundtrip() {
        let (r, c) = (64, 128);
        let x = image(r, c);
        let engine = Fft2d::new(r, c);
        let mut v = x.clone();
        engine.forward(&mut v);
        engine.inverse(&mut v);
        assert!(rms_error(&v, &x) < 1e-12);
    }

    #[test]
    fn impulse_is_flat_plane() {
        let (r, c) = (16, 32);
        let mut x = vec![Complex64::ZERO; r * c];
        x[0] = Complex64::ONE;
        Fft2d::new(r, c).forward(&mut x);
        assert!(x.iter().all(|v| v.dist(Complex64::ONE) < 1e-12));
    }

    #[test]
    fn separability_matches_1d_rows_then_cols() {
        let (r, c) = (8, 16);
        let x = image(r, c);
        // Manual: FFT each row, then each column, serially.
        let row_t = TwiddleTable::new(4, TwiddleLayout::Linear);
        let col_t = TwiddleTable::new(3, TwiddleLayout::Linear);
        let mut manual = x.clone();
        for row in manual.chunks_mut(c) {
            fft_row(row, &row_t);
        }
        for col in 0..c {
            let mut column: Vec<Complex64> = (0..r).map(|i| manual[i * c + col]).collect();
            fft_row(&mut column, &col_t);
            for i in 0..r {
                manual[i * c + col] = column[i];
            }
        }
        let mut got = x;
        Fft2d::with_workers(r, c, 2).forward(&mut got);
        assert!(rms_error(&got, &manual) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let (r, c) = (8, 32);
        let x = image(r, c);
        let mut t = vec![Complex64::ZERO; r * c];
        let mut back = vec![Complex64::ZERO; r * c];
        transpose(&x, &mut t, r, c);
        transpose(&t, &mut back, c, r);
        assert_eq!(x, back);
    }

    #[test]
    fn worker_counts_agree() {
        let (r, c) = (32, 64);
        let x = image(r, c);
        let mut a = x.clone();
        Fft2d::with_workers(r, c, 1).forward(&mut a);
        for workers in [2, 4, 8] {
            let mut b = x.clone();
            Fft2d::with_workers(r, c, workers).forward(&mut b);
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn forward_checks_shape() {
        let mut x = image(4, 4);
        Fft2d::new(8, 8).forward(&mut x);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_bad_shape() {
        Fft2d::new(12, 8);
    }
}
