//! 2-D FFT by row–column decomposition — a thin veneer over the plan
//! pipeline: the transform is a [`TransformKind::C2C2D`] plan resolved
//! through the engine's [`crate::planner::Planner`], so the row wave, the
//! blocked transpose, and the column wave all run on certified stage
//! tables, are visible to `fgcheck`'s passes and the bank linter through
//! `fgfft::workload`, and share the process-wide plan cache.
//!
//! Layout: row-major `rows × cols`, both powers of two. The plan runs one
//! batched 1-D FFT wave over the rows, transposes in `block × block` tiles,
//! runs the column wave, and transposes back.

use crate::api::Fft;
use crate::complex::Complex64;
use crate::workload::TransformKind;
use std::f64::consts::PI;

/// A 2-D FFT engine for a fixed shape.
///
/// ```
/// use fgfft::{Complex64, Fft2d};
/// let engine = Fft2d::with_workers(4, 8, 2);
/// let mut img = vec![Complex64::ZERO; 32];
/// img[0] = Complex64::ONE;                 // 2-D impulse
/// engine.forward(&mut img);
/// assert!(img.iter().all(|v| v.dist(Complex64::ONE) < 1e-12));
/// ```
#[derive(Debug)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    engine: Fft,
}

impl Fft2d {
    /// Plan a `rows × cols` transform (both powers of two ≥ 2) on all
    /// available cores.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_workers(
            rows,
            cols,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Plan with an explicit worker count.
    pub fn with_workers(rows: usize, cols: usize, workers: usize) -> Self {
        assert!(
            rows >= 2 && cols >= 2 && rows.is_power_of_two() && cols.is_power_of_two(),
            "rows and cols must be powers of two >= 2"
        );
        let engine = Fft::new().with_workers(workers);
        let this = Self { rows, cols, engine };
        // Resolve (and thereby cache) the plan eagerly: construction is the
        // planning step, exactly as before the veneer refactor.
        this.engine.plan_kind(this.kind(), rows * cols);
        this
    }

    fn kind(&self) -> TransformKind {
        TransformKind::C2C2D {
            rows_log2: self.rows.trailing_zeros(),
            cols_log2: self.cols.trailing_zeros(),
        }
    }

    /// Shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place forward 2-D transform of row-major `data`
    /// (`data.len() == rows·cols`).
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        let plan = self.engine.plan_kind(self.kind(), data.len());
        plan.execute(data, &self.engine.runtime());
    }

    /// In-place inverse 2-D transform (normalized by `1/(rows·cols)`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / (self.rows * self.cols) as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }
}

/// Out-of-place transpose: `dst[c][r] = src[r][c]` for `rows × cols` src.
/// Blocked for cache friendliness.
pub fn transpose(src: &[Complex64], dst: &mut [Complex64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    const BLOCK: usize = 32;
    for rb in (0..rows).step_by(BLOCK) {
        for cb in (0..cols).step_by(BLOCK) {
            for r in rb..(rb + BLOCK).min(rows) {
                for c in cb..(cb + BLOCK).min(cols) {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Naive O((RC)²) 2-D DFT: the correctness oracle.
pub fn naive_dft2d(input: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(input.len(), rows * cols);
    let mut out = vec![Complex64::ZERO; rows * cols];
    for kr in 0..rows {
        for kc in 0..cols {
            let mut acc = Complex64::ZERO;
            for r in 0..rows {
                for c in 0..cols {
                    let angle = -2.0 * PI * (kr * r) as f64 / rows as f64
                        - 2.0 * PI * (kc * c) as f64 / cols as f64;
                    acc += input[r * cols + c] * Complex64::expi(angle);
                }
            }
            out[kr * cols + kc] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::reference::recursive_fft;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| {
                Complex64::new(
                    ((i * 31 + 7) % 64) as f64 / 32.0 - 1.0,
                    ((i * 17 + 3) % 64) as f64 / 32.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (r, c) in [(4usize, 4usize), (8, 4), (4, 16), (16, 16)] {
            let x = image(r, c);
            let expect = naive_dft2d(&x, r, c);
            let mut got = x;
            Fft2d::with_workers(r, c, 3).forward(&mut got);
            assert!(rms_error(&got, &expect) < 1e-9, "{r}x{c}");
        }
    }

    #[test]
    fn roundtrip() {
        let (r, c) = (64, 128);
        let x = image(r, c);
        let engine = Fft2d::new(r, c);
        let mut v = x.clone();
        engine.forward(&mut v);
        engine.inverse(&mut v);
        assert!(rms_error(&v, &x) < 1e-12);
    }

    #[test]
    fn impulse_is_flat_plane() {
        let (r, c) = (16, 32);
        let mut x = vec![Complex64::ZERO; r * c];
        x[0] = Complex64::ONE;
        Fft2d::new(r, c).forward(&mut x);
        assert!(x.iter().all(|v| v.dist(Complex64::ONE) < 1e-12));
    }

    #[test]
    fn separability_matches_1d_rows_then_cols() {
        let (r, c) = (8, 16);
        let x = image(r, c);
        // Reference: 1-D FFT each row, then each column, serially.
        let mut manual = x.clone();
        for row in manual.chunks_exact_mut(c) {
            let out = recursive_fft(row);
            row.copy_from_slice(&out);
        }
        for col in 0..c {
            let column: Vec<Complex64> = (0..r).map(|i| manual[i * c + col]).collect();
            let out = recursive_fft(&column);
            for (i, v) in out.into_iter().enumerate() {
                manual[i * c + col] = v;
            }
        }
        let mut got = x;
        Fft2d::with_workers(r, c, 2).forward(&mut got);
        assert!(rms_error(&got, &manual) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let (r, c) = (8, 32);
        let x = image(r, c);
        let mut t = vec![Complex64::ZERO; r * c];
        let mut back = vec![Complex64::ZERO; r * c];
        transpose(&x, &mut t, r, c);
        transpose(&t, &mut back, c, r);
        assert_eq!(x, back);
    }

    #[test]
    fn worker_counts_agree() {
        let (r, c) = (32, 64);
        let x = image(r, c);
        let mut a = x.clone();
        Fft2d::with_workers(r, c, 1).forward(&mut a);
        for workers in [2, 4, 8] {
            let mut b = x.clone();
            Fft2d::with_workers(r, c, workers).forward(&mut b);
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn shares_the_process_wide_plan_cache() {
        let (r, c) = (4, 8);
        let warm = crate::planner::Planner::shared().stats().built;
        let mut x = image(r, c);
        Fft2d::with_workers(r, c, 1).forward(&mut x);
        let built = crate::planner::Planner::shared().stats().built;
        let mut y = image(r, c);
        Fft2d::with_workers(r, c, 1).forward(&mut y);
        assert_eq!(
            crate::planner::Planner::shared().stats().built,
            built,
            "second engine reuses the cached 2D plan"
        );
        let _ = warm;
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn forward_checks_shape() {
        let mut x = image(4, 4);
        Fft2d::new(8, 8).forward(&mut x);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_bad_shape() {
        Fft2d::new(12, 8);
    }
}
