//! # fgfft — memory-load balanced fine-grain FFT
//!
//! A Rust reproduction of *"Towards Memory-Load Balanced Fast Fourier
//! Transformations in Fine-grain Execution Models"* (Chen, Wu, Zuckerman,
//! Gao — IPPS 2013): an iterative radix-2⁶ Cooley–Tukey FFT decomposed into
//! 64-point *codelets* whose execution order is scheduled — coarsely with
//! barriers, finely with dataflow counters, or finely with a heuristic
//! guidance — to balance traffic across interleaved DRAM banks.
//!
//! ## What's here
//!
//! * [`complex`], [`bitrev`], [`twiddle`] — arithmetic, the bit-reversal
//!   permutation/hash, and twiddle tables with linear or hashed layouts.
//! * [`plan`] — the stage/codelet index algebra: element ownership,
//!   parent/child formulas, shared dependence-counter groups, and the
//!   guided algorithm's grouped seeding order.
//! * [`workload`] — the single authority for the codelet decomposition:
//!   per-codelet descriptors (butterfly pattern, twiddle run, edges,
//!   shared-counter group), the exact byte-address footprint of every
//!   codelet under either twiddle layout, and the schedule each Table-I
//!   version runs ([`workload::ScheduleSpec`]). Every layer below consumes
//!   this module rather than re-deriving the structure.
//! * [`kernel`] — the 2^p-point butterfly work unit.
//! * [`graph`] — the FFT as a `codelet::CodeletProgram` (full, and the
//!   guided algorithm's early/late slices).
//! * [`exec`] — host-parallel executors for all five algorithm versions of
//!   the paper's Table I, scheduled by the workload layer's spec.
//! * [`planner`] — reusable execution plans ([`Plan`]: twiddles, bit-reversal
//!   swaps, the workload layer's schedule and tables materialized into flat
//!   arrays) and the wisdom-style single-flight plan cache ([`Planner`])
//!   that the `fgserve` serving layer builds on.
//! * [`wisdom`] — persistent, machine-scoped autotuning results (FFTW-style
//!   wisdom): which pool order / guided split / runtime parameters the
//!   `fgtune` tuner measured fastest per [`PlanKey`], consulted by the
//!   planner when building plans.
//! * [`cert`] — schedule certificates: compact digests of a tuned schedule
//!   and its flattened tables that wisdom entries carry and the planner
//!   re-verifies before trusting a tuning on the `unsafe` hot path.
//! * [`backend`] — pluggable execution engines over certified plans:
//!   [`HostScalar`] (the classic tables path), [`HostSimd`] (AVX2 /
//!   portable f64x4 butterflies), and [`Threaded`] (work-stealing codelet
//!   pool), selected per `(N, machine)` by wisdom via [`BackendSel`].
//! * [`simwork`] — the workload layer's footprints lowered to byte-addressed
//!   DRAM traffic for the `c64sim` Cyclops-64 simulator: this is where the
//!   paper's bank-level results are reproduced.
//! * [`model`] — the paper's analytic peak model (Eqs. 1–4: 10 GFLOPS).
//! * [`mod@reference`] — naive DFT / recursive FFT oracles.
//! * [`api`] — the high-level [`Fft`] engine, [`convolve`],
//!   [`power_spectrum`].
//!
//! ## Quick start
//!
//! ```
//! use fgfft::{forward, inverse, Complex64};
//!
//! let mut data: Vec<Complex64> = (0..4096)
//!     .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
//!     .collect();
//! let original = data.clone();
//! forward(&mut data);
//! inverse(&mut data);
//! assert!(fgfft::rms_error(&data, &original) < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod backend;
pub mod bitrev;
pub mod bluestein;
pub mod cert;
pub mod complex;
pub mod exec;
pub mod fft2d;
pub mod graph;
pub mod kernel;
pub mod model;
pub mod plan;
pub mod planner;
pub mod reference;
pub mod rfft;
pub mod simwork;
pub mod stft;
pub mod stockham;
pub mod twiddle;
pub mod window;
pub mod wisdom;
pub mod workload;

pub use api::{convolve, forward, inverse, power_spectrum, Fft};
pub use backend::{
    Backend, BackendKind, BackendSel, Capabilities, HostScalar, HostSimd, PreparedPlan, Threaded,
};
pub use bluestein::{dft, idft};
pub use cert::{CertError, CertPolicy, Certificate, WORKLOAD_REVISION};
pub use complex::{rms_error, Complex64};
pub use exec::{fft_in_place, ExecConfig, ExecStats, SeedOrder, Version};
pub use fft2d::Fft2d;
pub use plan::FftPlan;
pub use planner::{Plan, PlanKey, Planner, PlannerStats};
pub use rfft::{irfft, rfft};
pub use simwork::{
    run_sim, run_sim_fine, run_sim_guided, run_sim_kind, run_sim_spec, FftWorkload, GuidedOptions,
    KindSim, Residence, SimVersion,
};
pub use stft::{spectrogram, stft, Spectrogram, StftConfig};
pub use twiddle::{TwiddleLayout, TwiddleTable};
pub use window::Window;
pub use wisdom::{machine_fingerprint, Wisdom, WisdomEntry, WisdomStatus};
pub use workload::{
    untangle_table, CodeletDesc, KindTaskClass, KindWorkload, ScheduleSpec, ScheduleTuning,
    TransformKind, Workload, DEFAULT_TRANSPOSE_BLOCK_LOG2,
};
