//! Cyclops-64 simulator workloads: the FFT as a stream of byte-addressed
//! memory operations, and one-call runners for every algorithm version.
//!
//! This is the bridge that reproduces the paper's machine-level results. It
//! does not re-derive any addresses or schedules: [`FftWorkload`] *lowers*
//! the [`crate::workload`] layer's footprint ops to [`MemOp`]s (adding the
//! chip's cost model — hash cycles, register-spill cycles), and the runners
//! execute the [`ScheduleSpec`] of each version on the simulated 4-bank
//! memory system. Each codelet issues, exactly as counted in the paper,
//! `P` data loads + (`P−1` for full stages) twiddle loads + `P` data
//! stores of 16 bytes each, plus `5·P·q` flops.

use crate::graph::{FftGraph, GuidedEarlyGraph, GuidedLateGraph};
use crate::plan::FftPlan;
use crate::twiddle::TwiddleLayout;
use crate::workload::{
    KindTaskClass, KindWorkload, Region, ScheduleSpec, SeedOrder, TransformKind, Workload,
};
use c64sim::address::{MemRange, Space};
use c64sim::sched::{PoolScheduler, SequencedScheduler, SimPoolDiscipline};
use c64sim::{simulate, ChipConfig, MemOp, SimOptions, SimReport, TaskCost, TaskId, TaskModel};

pub use crate::workload::{Residence, Version as SimVersion};

/// The FFT expressed as a [`TaskModel`]: task `t` is codelet `t` of the
/// plan. `emit` replays the workload layer's footprint — byte-identical
/// addresses, same issue order — into the simulator's address stream, and
/// prices it with the chip's hash and spill costs.
#[derive(Debug, Clone)]
pub struct FftWorkload {
    inner: Workload,
    /// Extra cycles charged per twiddle access for evaluating the software
    /// hash (0 for the linear layout).
    hash_cycles_per_access: u64,
    /// Exposed cycles per register-spill scratchpad access.
    spill_cycles_per_op: u64,
}

impl FftWorkload {
    /// Codelet sizes that fit the C64 scratchpad working set (64 points of
    /// data + twiddles + temporaries); larger codelets spill. Defined by the
    /// workload layer; mirrored here for the cost-model reader.
    pub const SCRATCHPAD_RADIX_LOG2: u32 = crate::workload::SCRATCHPAD_RADIX_LOG2;

    /// Points that fit the C64 register file (64 x 64-bit registers = 32
    /// complex values; 8 data points + twiddles + temporaries is the
    /// paper's cited limit for register-resident butterflies).
    pub const REGISTER_RADIX_LOG2: u32 = 3;

    /// Lay the data and twiddle arrays out in simulated DRAM, mirroring the
    /// paper's setup (both contiguous in off-chip memory, 64-byte aligned),
    /// and derive the hash cost from the chip parameters.
    pub fn new(plan: FftPlan, layout: TwiddleLayout, chip: &ChipConfig) -> Self {
        Self::with_residence(plan, layout, Residence::Dram, chip)
    }

    /// The predecessor study's on-chip configuration: data and twiddles in
    /// SRAM (the problem must fit — the caller is trusted on sizing, as on
    /// the real machine).
    pub fn new_onchip(plan: FftPlan, chip: &ChipConfig) -> Self {
        Self::with_residence(plan, TwiddleLayout::Linear, Residence::Sram, chip)
    }

    /// Fully explicit constructor.
    pub fn with_residence(
        plan: FftPlan,
        layout: TwiddleLayout,
        residence: Residence,
        chip: &ChipConfig,
    ) -> Self {
        let hash_cycles_per_access = match layout {
            TwiddleLayout::Linear => 0,
            // Bit reversal costs grow with the number of index bits (the
            // paper's explanation for the fine-hash slowdown at large N).
            TwiddleLayout::BitReversedHash => {
                chip.hash_base_cycles + chip.hash_cycles_per_bit * (plan.n_log2() as u64 - 1)
            }
            // One multiply + mask: flat cost.
            TwiddleLayout::MultiplicativeHash => chip.hash_base_cycles + 3,
        };
        Self {
            inner: Workload::with_residence(plan, layout, residence),
            hash_cycles_per_access,
            spill_cycles_per_op: chip.spill_cycles_per_op,
        }
    }

    /// The plan driving this workload.
    pub fn plan(&self) -> &FftPlan {
        self.inner.plan()
    }

    /// The address-algebra view this cost model lowers.
    pub fn workload(&self) -> &Workload {
        &self.inner
    }

    /// DRAM byte address of data element `e`.
    pub fn data_addr(&self, e: usize) -> u64 {
        self.inner.data_addr(e)
    }

    /// DRAM byte address of logical twiddle index `t` under the layout.
    pub fn twiddle_addr(&self, t: usize) -> u64 {
        self.inner.twiddle_addr(t)
    }

    /// The memory footprint of codelet `task` — delegated to the workload
    /// layer, so the race detector, bank linter, and this simulator can
    /// never disagree about what a codelet touches.
    pub fn footprint(&self, task: TaskId) -> Vec<MemRange> {
        self.inner.footprint(task)
    }
}

impl TaskModel for FftWorkload {
    fn num_tasks(&self) -> usize {
        self.inner.plan().total_codelets()
    }

    fn emit(&self, task: TaskId, ops: &mut Vec<MemOp>) -> TaskCost {
        let plan = self.inner.plan();
        let q = plan.levels(plan.stage_of(task));
        let radix = plan.radix() as u64;
        let space = match self.inner.residence() {
            Residence::Dram => Space::Dram,
            Residence::Sram => Space::Sram,
        };

        // Lower the footprint to the simulator's address stream: data and
        // twiddle accesses live in the chosen residence, spill traffic is
        // always DRAM (off-chip residence only).
        let mut n_tw = 0u64;
        self.inner.for_each_op(task, |op| {
            if op.region == Region::Twiddle {
                n_tw += 1;
            }
            ops.push(MemOp {
                addr: op.range.lo,
                bytes: op.range.len() as u32,
                write: op.range.write,
                space: match op.region {
                    Region::Spill => Space::Dram,
                    Region::Data | Region::Twiddle | Region::Scratch => space,
                },
            });
        });

        // Register pressure (Sec. III-B): every level beyond the 8-point
        // register-resident butterfly spills its working set to the
        // private scratchpad — store+load per point per level, partially
        // exposed on the in-order pipeline. Off-chip this hides under the
        // DRAM time; on-chip it is the binding cost that makes 8-point
        // codelets the sweet spot.
        let spill_levels = q.saturating_sub(Self::REGISTER_RADIX_LOG2) as u64;
        let spill_cycles = spill_levels * 2 * radix * self.spill_cycles_per_op;

        TaskCost {
            flops: 5 * radix * q as u64,
            extra_cycles: n_tw * self.hash_cycles_per_access + spill_cycles,
        }
    }
}

/// A composite transform (real-packed or 2-D) as a [`TaskModel`]: task `t`
/// is composite task `t` of the [`KindWorkload`] — inner FFT codelets are
/// priced exactly as [`FftWorkload`] prices them (flops, hash, spill), and
/// the extra stages (untangle pairs, transpose tiles, finalize spans) are
/// priced as the data movement they are. Everything lives in simulated
/// DRAM, including the 2-D scratch plane, so the bank linter and this
/// simulator agree on every byte of transpose traffic.
#[derive(Debug, Clone)]
pub struct KindSim {
    inner: KindWorkload,
    hash_cycles_per_access: u64,
    spill_cycles_per_op: u64,
}

impl KindSim {
    /// Lay out the composite transform in simulated DRAM and derive the
    /// chip's hash cost from the inner plan size.
    pub fn new(
        kind: TransformKind,
        n_log2: u32,
        radix_log2: u32,
        layout: TwiddleLayout,
        chip: &ChipConfig,
    ) -> Self {
        let inner = KindWorkload::new(kind, n_log2, radix_log2, layout);
        let inner_log2 = inner.inner().plan().n_log2();
        let hash_cycles_per_access = match layout {
            TwiddleLayout::Linear => 0,
            TwiddleLayout::BitReversedHash => {
                chip.hash_base_cycles + chip.hash_cycles_per_bit * (inner_log2 as u64 - 1)
            }
            TwiddleLayout::MultiplicativeHash => chip.hash_base_cycles + 3,
        };
        Self {
            inner,
            hash_cycles_per_access,
            spill_cycles_per_op: chip.spill_cycles_per_op,
        }
    }

    /// The composite address-algebra view this cost model lowers.
    pub fn workload(&self) -> &KindWorkload {
        &self.inner
    }
}

impl TaskModel for KindSim {
    fn num_tasks(&self) -> usize {
        self.inner.n_tasks()
    }

    fn emit(&self, task: TaskId, ops: &mut Vec<MemOp>) -> TaskCost {
        let mut n_tw = 0u64;
        self.inner.for_each_op(task, |op| {
            if op.region == Region::Twiddle {
                n_tw += 1;
            }
            ops.push(MemOp {
                addr: op.range.lo,
                bytes: op.range.len() as u32,
                write: op.range.write,
                space: Space::Dram,
            });
        });
        match self.inner.task_class(task) {
            KindTaskClass::Inner { q } => {
                let radix = self.inner.inner().plan().radix() as u64;
                let spill_levels = q.saturating_sub(FftWorkload::REGISTER_RADIX_LOG2) as u64;
                TaskCost {
                    flops: 5 * radix * q as u64,
                    extra_cycles: n_tw * self.hash_cycles_per_access
                        + spill_levels * 2 * radix * self.spill_cycles_per_op,
                }
            }
            // ~10 flops per conjugate-symmetric bin pair (two half-sums,
            // one complex multiply, two writes); untangle factors are
            // direct-indexed, so no hash cost.
            KindTaskClass::Pair { bins } => TaskCost {
                flops: 10 * bins as u64,
                extra_cycles: 0,
            },
            // Pure data movement.
            KindTaskClass::Tile { .. } => TaskCost {
                flops: 0,
                extra_cycles: 0,
            },
            // Conjugate + scale: 2 flops per element.
            KindTaskClass::Finalize { elems } => TaskCost {
                flops: 2 * elems as u64,
                extra_cycles: 0,
            },
        }
    }
}

/// Simulate one composite transform (any [`TransformKind`]) on the
/// configured chip, barrier-phased over [`KindWorkload::phases`] — the
/// entry point the per-kind drift test and the bench harness drive.
pub fn run_sim_kind(
    kind: TransformKind,
    n_log2: u32,
    radix_log2: u32,
    layout: TwiddleLayout,
    chip: &ChipConfig,
    options: &SimOptions,
) -> SimReport {
    let model = KindSim::new(kind, n_log2, radix_log2, layout, chip);
    let mut sched = SequencedScheduler::coarse(model.workload().phases());
    simulate(chip, &model, &mut sched, options)
}

/// Simulate one FFT run on the configured chip; returns the machine-level
/// report (makespan, GFLOPS, per-bank traces).
pub fn run_sim(
    plan: FftPlan,
    version: SimVersion,
    chip: &ChipConfig,
    options: &SimOptions,
) -> SimReport {
    run_sim_with_layout(plan, version, version.layout(), chip, options)
}

/// As [`run_sim`], but with an explicit twiddle layout (used by the hash
/// ablation to try layouts the paper did not pair with each schedule).
pub fn run_sim_with_layout(
    plan: FftPlan,
    version: SimVersion,
    layout: TwiddleLayout,
    chip: &ChipConfig,
    options: &SimOptions,
) -> SimReport {
    // The schedule comes from the workload layer — the same spec the
    // planner materializes and `fgcheck` verifies.
    run_sim_spec(
        plan,
        layout,
        &ScheduleSpec::of(plan, version),
        chip,
        options,
    )
}

/// Simulate an explicit [`ScheduleSpec`] — the entry point behind every
/// version runner, exposed so the `fgtune` autotuner can replay a *tuned*
/// spec (pool order, guided split) through the same bank model it will
/// later measure on the host.
pub fn run_sim_spec(
    plan: FftPlan,
    layout: TwiddleLayout,
    spec: &ScheduleSpec,
    chip: &ChipConfig,
    options: &SimOptions,
) -> SimReport {
    let workload = FftWorkload::new(plan, layout, chip);
    match spec {
        ScheduleSpec::Phased { phases } => {
            let mut sched = SequencedScheduler::coarse(phases.clone());
            simulate(chip, &workload, &mut sched, options)
        }
        ScheduleSpec::Fine { graph, seeds } => {
            let mut sched =
                SequencedScheduler::fine_with_seeds(graph, seeds, SimPoolDiscipline::Lifo);
            simulate(chip, &workload, &mut sched, options)
        }
        ScheduleSpec::Guided {
            early,
            early_seeds,
            late,
            late_seeds,
        } => {
            let mut sched = SequencedScheduler::new(vec![
                Box::new(PoolScheduler::new(
                    early,
                    early_seeds,
                    SimPoolDiscipline::Lifo,
                    early.expected(),
                )),
                Box::new(PoolScheduler::new(
                    late,
                    late_seeds,
                    SimPoolDiscipline::Lifo,
                    late.expected(),
                )),
            ]);
            simulate(chip, &workload, &mut sched, options)
        }
    }
}

/// Simulate a fine-grain run with full control of layout, seed order, and
/// pool discipline — the entry point behind the `fine worst`/`fine best`
/// sweeps (the paper reports the spread of the fine version over pool
/// arrangements; discipline × order × seed is our spread space).
pub fn run_sim_fine(
    plan: FftPlan,
    layout: TwiddleLayout,
    order: SeedOrder,
    discipline: SimPoolDiscipline,
    chip: &ChipConfig,
    options: &SimOptions,
) -> SimReport {
    let workload = FftWorkload::new(plan, layout, chip);
    let graph = FftGraph::new(plan);
    let seeds = order.order(plan.codelets_per_stage());
    let mut sched = SequencedScheduler::fine_with_seeds(&graph, &seeds, discipline);
    simulate(chip, &workload, &mut sched, options)
}

/// Knobs for the guided schedule beyond the paper's fixed choices — used by
/// the ablation benches (split point, seed order, pool discipline).
#[derive(Debug, Clone, Copy)]
pub struct GuidedOptions {
    /// Use the bank-rotated phase-2 seed order (the library default) rather
    /// than the paper's literal grouped order.
    pub bank_rotated_seeds: bool,
    /// Pool discipline of both guided phases.
    pub discipline: SimPoolDiscipline,
    /// Last stage of phase one; `None` = the paper's `last_stage − 2`.
    pub last_early: Option<usize>,
}

impl Default for GuidedOptions {
    fn default() -> Self {
        Self {
            bank_rotated_seeds: true,
            discipline: SimPoolDiscipline::Lifo,
            last_early: None,
        }
    }
}

/// Simulate the guided schedule with explicit knobs (ablation entry point).
/// Requires at least 3 stages and `last_early + 1 < stages`.
pub fn run_sim_guided(
    plan: FftPlan,
    chip: &ChipConfig,
    options: &SimOptions,
    guided: &GuidedOptions,
) -> SimReport {
    let workload = FftWorkload::new(plan, TwiddleLayout::Linear, chip);
    assert!(plan.stages() >= 3, "guided needs at least 3 stages");
    let last_early = guided.last_early.unwrap_or(plan.stages() - 3);
    let early = GuidedEarlyGraph::new(plan, last_early);
    let early_seeds = early.seeds();
    let first_late = last_early + 1;
    let late = GuidedLateGraph::new(plan, first_late);
    let late_seeds: Vec<TaskId> = if guided.bank_rotated_seeds || first_late + 1 >= plan.stages() {
        late.seeds()
    } else {
        late.seeds_paper_order()
    };
    let mut sched = SequencedScheduler::new(vec![
        Box::new(PoolScheduler::new(
            &early,
            &early_seeds,
            guided.discipline,
            early.expected(),
        )),
        Box::new(PoolScheduler::new(
            &late,
            &late_seeds,
            guided.discipline,
            late.expected(),
        )),
    ]);
    simulate(chip, &workload, &mut sched, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::twiddle_loads;
    use crate::workload::ELEM_BYTES as ELEM;

    fn small_chip() -> ChipConfig {
        ChipConfig::cyclops64().with_thread_units(16)
    }

    fn opts() -> SimOptions {
        SimOptions {
            trace_window: 50_000,
        }
    }

    #[test]
    fn workload_op_counts_match_paper() {
        let plan = FftPlan::new(12, 6); // two full stages
        let w = FftWorkload::new(plan, TwiddleLayout::Linear, &small_chip());
        let mut ops = Vec::new();
        let cost = w.emit(0, &mut ops);
        // 64 loads + 63 twiddles + 64 stores.
        assert_eq!(ops.len(), 64 + 63 + 64);
        assert_eq!(cost.flops, 5 * 64 * 6);
        // No hash cost; register spills for the 3 levels beyond the 8-point
        // register-resident butterfly.
        let chip = small_chip();
        assert_eq!(cost.extra_cycles, 3 * 2 * 64 * chip.spill_cycles_per_op);
        assert_eq!(ops.iter().filter(|o| o.write).count(), 64);
    }

    #[test]
    fn footprint_mirrors_emitted_ops() {
        let plan = FftPlan::new(12, 6);
        let w = FftWorkload::new(plan, TwiddleLayout::Linear, &small_chip());
        let mut ops = Vec::new();
        w.emit(5, &mut ops);
        let fp = w.footprint(5);
        assert_eq!(fp.len(), ops.len());
        for (r, op) in fp.iter().zip(&ops) {
            assert_eq!(
                (r.lo, r.len(), r.write),
                (op.addr, op.bytes as u64, op.write)
            );
        }
        // Exactly the paper's P writes, and every range is one element.
        assert_eq!(fp.iter().filter(|r| r.write).count(), 64);
        assert!(fp.iter().all(|r| r.len() == ELEM));
    }

    #[test]
    fn hashed_layout_charges_hash_cycles() {
        let plan = FftPlan::new(12, 6);
        let chip = small_chip();
        let w = FftWorkload::new(plan, TwiddleLayout::BitReversedHash, &chip);
        let mut ops = Vec::new();
        let cost = w.emit(0, &mut ops);
        let per = chip.hash_base_cycles + chip.hash_cycles_per_bit * 11;
        let spill = 3 * 2 * 64 * chip.spill_cycles_per_op;
        assert_eq!(cost.extra_cycles, 63 * per + spill);
    }

    #[test]
    fn early_stage_twiddles_all_on_bank_zero_linear() {
        // The motivating observation: with linear layout, every stage-0/1
        // twiddle address of a large FFT maps to bank 0.
        let plan = FftPlan::new(16, 6);
        let chip = small_chip();
        let w = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
        let il = c64sim::Interleave::cyclops64();
        let mut ops = Vec::new();
        for idx in [0usize, 1, 100] {
            ops.clear();
            w.emit(plan.codelet_id(0, idx), &mut ops);
            for op in &ops[64..64 + 63] {
                assert_eq!(il.bank_of(op.addr), 0, "stage-0 twiddle off bank 0");
            }
        }
    }

    #[test]
    fn last_stage_twiddles_are_spread() {
        let plan = FftPlan::new(16, 6);
        let chip = small_chip();
        let w = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
        let il = c64sim::Interleave::cyclops64();
        let mut banks = vec![0u64; 4];
        let mut ops = Vec::new();
        let last = plan.stages() - 1;
        for idx in 0..plan.codelets_per_stage() {
            ops.clear();
            w.emit(plan.codelet_id(last, idx), &mut ops);
            let n_tw = twiddle_loads(&plan, last);
            for op in &ops[64..64 + n_tw] {
                banks[il.bank_of(op.addr)] += 1;
            }
        }
        let total: u64 = banks.iter().sum();
        let max = *banks.iter().max().unwrap() as f64;
        assert!(
            max / (total as f64 / 4.0) < 1.6,
            "last-stage twiddles should spread: {banks:?}"
        );
    }

    #[test]
    fn all_versions_simulate_and_complete() {
        let plan = FftPlan::new(13, 6);
        let chip = small_chip();
        for v in [
            SimVersion::Coarse,
            SimVersion::CoarseHash,
            SimVersion::Fine(SeedOrder::Natural),
            SimVersion::FineHash(SeedOrder::Natural),
            SimVersion::FineGuided,
        ] {
            let r = run_sim(plan, v, &chip, &opts());
            assert_eq!(r.tasks as usize, plan.total_codelets(), "{}", v.name());
            assert_eq!(r.flops, 5 * (plan.n() as u64) * plan.n_log2() as u64);
            assert!(r.gflops > 0.0);
        }
    }

    #[test]
    fn coarse_sim_is_contended_hash_is_balanced() {
        let plan = FftPlan::new(15, 6);
        let chip = ChipConfig::cyclops64().with_thread_units(64);
        let coarse = run_sim(plan, SimVersion::Coarse, &chip, &opts());
        let hash = run_sim(
            plan,
            SimVersion::FineHash(SeedOrder::Natural),
            &chip,
            &opts(),
        );
        assert!(
            coarse.bank_imbalance() > 1.3,
            "coarse must show bank-0 skew, got {}",
            coarse.bank_imbalance()
        );
        assert!(
            hash.bank_imbalance() < 1.15,
            "hashed must be balanced, got {}",
            hash.bank_imbalance()
        );
    }

    #[test]
    fn guided_beats_coarse_in_simulation() {
        // The paper's headline direction (Fig. 8/9). The magnitude is
        // bounded by the bank-0 conservation floor — see EXPERIMENTS.md —
        // so assert the direction with the paper's machine size.
        let plan = FftPlan::new(15, 6);
        let chip = ChipConfig::cyclops64();
        let coarse = run_sim(plan, SimVersion::Coarse, &chip, &opts());
        let guided = run_sim(plan, SimVersion::FineGuided, &chip, &opts());
        assert!(
            guided.gflops > coarse.gflops,
            "guided {} <= coarse {}",
            guided.gflops,
            coarse.gflops
        );
        // And the hashed fine version shows the large (~1.4x) gain.
        let hash = run_sim(
            plan,
            SimVersion::FineHash(SeedOrder::Natural),
            &chip,
            &opts(),
        );
        assert!(hash.gflops > 1.25 * coarse.gflops);
    }

    #[test]
    fn sim_is_deterministic() {
        let plan = FftPlan::new(12, 6);
        let chip = small_chip();
        let a = run_sim(plan, SimVersion::FineGuided, &chip, &opts());
        let b = run_sim(plan, SimVersion::FineGuided, &chip, &opts());
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.bank_accesses, b.bank_accesses);
    }

    #[test]
    fn kind_sims_complete_for_every_kind() {
        let chip = small_chip();
        for kind in [
            TransformKind::R2C,
            TransformKind::C2R,
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 6,
            },
        ] {
            let r = run_sim_kind(kind, 11, 6, TwiddleLayout::Linear, &chip, &opts());
            let model = KindSim::new(kind, 11, 6, TwiddleLayout::Linear, &chip);
            assert_eq!(r.tasks as usize, model.workload().n_tasks(), "{kind:?}");
            assert!(r.gflops > 0.0, "{kind:?}");
            assert!(r.bank_accesses.iter().sum::<u64>() > 0, "{kind:?}");
        }
    }

    #[test]
    fn oversized_codelets_spill() {
        let plan = FftPlan::new(14, 7); // 128-point codelets
        let chip = small_chip();
        let w = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
        let mut ops = Vec::new();
        w.emit(0, &mut ops);
        // 128 loads + 127 twiddles + 128 spill stores + 128 spill loads +
        // 128 stores.
        assert_eq!(ops.len(), 128 + 127 + 256 + 128);
    }
}
