//! Window functions for spectral analysis: applied before a transform to
//! trade main-lobe width against side-lobe leakage.

use std::f64::consts::PI;

/// The classic analysis windows.
///
/// ```
/// use fgfft::Window;
/// let mut frame = vec![1.0; 64];
/// Window::Hann.apply(&mut frame);
/// assert!(frame[0].abs() < 1e-12 && (frame[32] - 1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// No windowing (all-ones).
    Rectangular,
    /// Hann: `0.5 − 0.5·cos`, −31 dB first side lobe.
    Hann,
    /// Hamming: `0.54 − 0.46·cos`, −43 dB first side lobe.
    Hamming,
    /// Blackman (exact coefficients), −58 dB first side lobe.
    Blackman,
}

impl Window {
    /// Coefficient `w[i]` of an `n`-point window.
    pub fn coeff(&self, i: usize, n: usize) -> f64 {
        assert!(i < n, "index out of window");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Materialize the window.
    pub fn coefficients(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coeff(i, n)).collect()
    }

    /// Multiply a signal by the window in place.
    pub fn apply(&self, signal: &mut [f64]) {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.coeff(i, n);
        }
    }

    /// Coherent gain: mean coefficient — divide peak magnitudes by this to
    /// recover amplitudes.
    pub fn coherent_gain(&self, n: usize) -> f64 {
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_identity() {
        let mut v = vec![1.5; 16];
        Window::Rectangular.apply(&mut v);
        assert!(v.iter().all(|&x| x == 1.5));
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn windows_are_symmetric() {
        let n = 33;
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(n);
            for i in 0..n {
                assert!((c[i] - c[n - 1 - i]).abs() < 1e-12, "{w:?} at {i}");
            }
        }
    }

    #[test]
    fn windows_peak_at_center() {
        let n = 65;
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(n);
            let max = c.iter().cloned().fold(0.0, f64::max);
            assert!((c[n / 2] - max).abs() < 1e-12, "{w:?}");
            assert!(max <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn hann_ends_at_zero() {
        let c = Window::Hann.coefficients(64);
        assert!(c[0].abs() < 1e-12);
        assert!(c[63].abs() < 1e-12);
    }

    #[test]
    fn coherent_gains_ordered_by_aggressiveness() {
        let n = 256;
        let r = Window::Rectangular.coherent_gain(n);
        let ham = Window::Hamming.coherent_gain(n);
        let han = Window::Hann.coherent_gain(n);
        let b = Window::Blackman.coherent_gain(n);
        assert!(r > ham && ham > han && han > b);
    }

    #[test]
    fn windowing_reduces_leakage() {
        // An off-bin tone leaks badly with a rectangular window; Hann
        // suppresses the far side lobes by orders of magnitude.
        let n = 1024;
        let freq = 100.25; // deliberately between bins
        let make = |w: Window| -> Vec<f64> {
            let mut s: Vec<f64> = (0..n)
                .map(|i| (2.0 * PI * freq * i as f64 / n as f64).sin())
                .collect();
            w.apply(&mut s);
            let (_, spec) = crate::api::power_spectrum(&s);
            spec
        };
        let rect = make(Window::Rectangular);
        let hann = make(Window::Hann);
        // Compare energy far from the tone.
        let far: f64 = rect[300..].iter().sum();
        let far_h: f64 = hann[300..].iter().sum();
        assert!(
            far_h < far / 100.0,
            "Hann should suppress far leakage: {far_h} vs {far}"
        );
    }

    #[test]
    fn single_point_window() {
        for w in [Window::Hann, Window::Blackman] {
            assert_eq!(w.coeff(0, 1), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of window")]
    fn coeff_bounds_checked() {
        Window::Hann.coeff(5, 5);
    }
}
