//! Schedule certificates: integrity evidence for tuned plans and wisdom.
//!
//! A [`crate::wisdom::Wisdom`] file is data that steers the `unsafe` hot
//! path: its tunings pick the pool order the planner materializes into the
//! flattened tables `Plan::execute` streams through without bounds checks.
//! PR 1's `fgcheck` proves a schedule sound *at tuning time*; this module
//! makes that proof portable — a compact [`Certificate`] the checker issues,
//! `fgtune` embeds in every wisdom entry, and the planner re-verifies before
//! trusting the entry, so stale, tampered, or foreign-revision wisdom is
//! rejected instead of silently steering unsafe code.
//!
//! What a certificate can and cannot promise:
//!
//! * **Drift** — the decomposition authority ([`crate::workload`]) changed
//!   since the certificate was issued. Caught by [`WORKLOAD_REVISION`] and
//!   by recomputing the schedule/table digests against the current code.
//! * **Corruption/tampering** — any certificate field or the tuning it
//!   covers was edited. Caught by the [`Certificate::seal`] self-digest and
//!   the recomputed digests.
//! * **Not authenticity** — digests are keyless (no secret material), so a
//!   certificate proves integrity against accident and drift, not against
//!   an adversary who can also recompute the digests. The wisdom trust
//!   model is "machine-local config file", not "untrusted network input".
//!
//! Verification is split by cost so each layer pays only what it needs:
//!
//! * [`Certificate::verify_static`] — seal + revision + schedule digest,
//!   `O(pool)` with no plan build. [`crate::wisdom::Wisdom::load`] runs
//!   this on every entry.
//! * [`Certificate::verify_plan`] — the above plus the table digest over a
//!   built [`Plan`]'s independent data (gather/pair/swap tables and the
//!   twiddle factor table — see [`table_digest`] for what is deliberately
//!   excluded and why). [`crate::planner::Planner`] runs this once per
//!   cold plan build (measured < 5% of build time, see EXPERIMENTS.md).

use crate::plan::FftPlan;
use crate::planner::{Plan, PlanKey};
use crate::twiddle::TwiddleLayout;
use crate::workload::{ScheduleTuning, TransformKind};
use fgsupport::json::Value;

/// Revision of the codelet decomposition authority ([`crate::workload`]).
///
/// Bump whenever the schedule or table *lowering* changes meaning — a new
/// gather layout, a different twiddle-run order, a changed seed derivation —
/// so certificates issued against the old lowering are rejected as foreign
/// instead of vouching for tables they never saw.
///
/// Revision 2: transform kinds (R2C / C2R / 2-D) became part of the plan
/// identity — the schedule digest streams the kind and the transpose block
/// size, and the table digest covers the column plan and untangle table.
pub const WORKLOAD_REVISION: u64 = 2;

/// Multi-lane FNV-style digest (keyless, dependency-free).
///
/// Eight independent xor-multiply lanes: a single serial FNV chain is
/// latency-bound (the next multiply waits on the last), which measured
/// ~25% of cold plan-build time when streaming a plan's multi-megabyte
/// tables. Scalar writes go to lane `count % 8`; the bulk slice writers
/// feed full 8-word blocks with a fixed word→lane mapping so the inner
/// loops unroll into eight independent register chains. The digest is
/// defined by the exact sequence of `write_*` calls (scalar and bulk
/// writes are **not** interchangeable byte-for-byte) — fine for a
/// checksum whose issuer and verifier run the same code. Each lane and
/// the total count feed a splitmix64-avalanched fold at the end, so
/// single-bit differences — in any lane, or in stream length — flip
/// about half the output bits.
#[derive(Debug, Clone, Copy)]
pub struct Digest {
    lanes: [u64; Self::LANES],
    count: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    const LANES: usize = 8;
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh digest with a domain `tag` so different digest kinds over the
    /// same bytes cannot collide.
    pub fn new_tagged(tag: u64) -> Self {
        let mut d = Self::new();
        d.write_u64(tag);
        d
    }

    /// Fresh untagged digest.
    pub fn new() -> Self {
        // Distinct lane offsets so a word sequence rotated by whole lanes
        // does not alias.
        let mut lanes = [0u64; Self::LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = Self::OFFSET.wrapping_add((i as u64).wrapping_mul(Self::PRIME));
        }
        Self { lanes, count: 0 }
    }

    /// Fold one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        let lane = (self.count as usize) % Self::LANES;
        self.lanes[lane] = (self.lanes[lane] ^ word).wrapping_mul(Self::PRIME);
        self.count += 1;
    }

    /// Fold one `u32` (widened).
    #[inline]
    pub fn write_u32(&mut self, word: u32) {
        self.write_u64(word as u64);
    }

    /// Fold one `usize` (widened).
    #[inline]
    pub fn write_usize(&mut self, word: usize) {
        self.write_u64(word as u64);
    }

    /// Fold one `f64` bit pattern (bitwise — `-0.0` and `0.0` differ, which
    /// is exactly right for detecting table drift).
    #[inline]
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Bulk fold: one packed word per item, 8 items per round, one per
    /// lane with a fixed item→lane mapping (independent of `count`). The
    /// lane state is hoisted into a local array for the whole slice so the
    /// loop compiles to eight independent xor-multiply register chains —
    /// the scalar path's per-word `count % 8` lane selection is what kept
    /// the serial-FNV latency wall in place.
    #[inline]
    fn write_bulk<T>(&mut self, items: &[T], pack: impl Fn(&T) -> u64) {
        let mut lanes = self.lanes;
        let mut rounds = items.chunks_exact(Self::LANES);
        for chunk in &mut rounds {
            let mut words = [0u64; Self::LANES];
            for (word, item) in words.iter_mut().zip(chunk) {
                *word = pack(item);
            }
            for (lane, word) in lanes.iter_mut().zip(words) {
                *lane = (*lane ^ word).wrapping_mul(Self::PRIME);
            }
        }
        self.lanes = lanes;
        self.count += (items.len() - rounds.remainder().len()) as u64;
        for item in rounds.remainder() {
            self.write_u64(pack(item));
        }
    }

    /// Fold a `u32` slice, two values per word — the bulk path for gather
    /// tables.
    pub fn write_u32_slice(&mut self, words: &[u32]) {
        const STRIDE: usize = 2 * Digest::LANES;
        let mut lanes = self.lanes;
        let mut rounds = words.chunks_exact(STRIDE);
        for chunk in &mut rounds {
            for (lane, pair) in lanes.iter_mut().zip(chunk.chunks_exact(2)) {
                let word = (pair[0] as u64) | ((pair[1] as u64) << 32);
                *lane = (*lane ^ word).wrapping_mul(Self::PRIME);
            }
        }
        self.lanes = lanes;
        self.count += ((words.len() - rounds.remainder().len()) / 2) as u64;
        let mut pairs = rounds.remainder().chunks_exact(2);
        for pair in &mut pairs {
            self.write_u64((pair[0] as u64) | ((pair[1] as u64) << 32));
        }
        for &w in pairs.remainder() {
            self.write_u64(w as u64);
        }
    }

    /// Fold a `u32` slice whose values are structurally known `< 2^16`
    /// (the caller gates on plan bounds, e.g. `n_log2 <= 16`), four values
    /// per word — halves the word count on the small-plan digests where
    /// fixed verification cost weighs most against a fast build.
    pub fn write_u32_slice_narrow(&mut self, words: &[u32]) {
        const STRIDE: usize = 4 * Digest::LANES;
        let pack = |quad: &[u32]| {
            (quad[0] as u64)
                | ((quad[1] as u64) << 16)
                | ((quad[2] as u64) << 32)
                | ((quad[3] as u64) << 48)
        };
        let mut lanes = self.lanes;
        let mut rounds = words.chunks_exact(STRIDE);
        for chunk in &mut rounds {
            for (lane, quad) in lanes.iter_mut().zip(chunk.chunks_exact(4)) {
                *lane = (*lane ^ pack(quad)).wrapping_mul(Self::PRIME);
            }
        }
        self.lanes = lanes;
        self.count += ((words.len() - rounds.remainder().len()) / 4) as u64;
        let mut quads = rounds.remainder().chunks_exact(4);
        for quad in &mut quads {
            self.write_u64(pack(quad));
        }
        for &w in quads.remainder() {
            self.write_u64(w as u64);
        }
    }

    /// Fold a `(u32, u32)` slice, one pair per word.
    pub fn write_pair_slice(&mut self, pairs: &[(u32, u32)]) {
        self.write_bulk(pairs, |&(lo, hi)| (lo as u64) | ((hi as u64) << 32));
    }

    /// Fold a `(u32, u32)` slice whose components are structurally known
    /// `< 2^16`, two pairs per word.
    pub fn write_pair_slice_narrow(&mut self, pairs: &[(u32, u32)]) {
        const STRIDE: usize = 2 * Digest::LANES;
        let pack = |two: &[(u32, u32)]| {
            (two[0].0 as u64)
                | ((two[0].1 as u64) << 16)
                | ((two[1].0 as u64) << 32)
                | ((two[1].1 as u64) << 48)
        };
        let mut lanes = self.lanes;
        let mut rounds = pairs.chunks_exact(STRIDE);
        for chunk in &mut rounds {
            for (lane, two) in lanes.iter_mut().zip(chunk.chunks_exact(2)) {
                *lane = (*lane ^ pack(two)).wrapping_mul(Self::PRIME);
            }
        }
        self.lanes = lanes;
        self.count += ((pairs.len() - rounds.remainder().len()) / 2) as u64;
        let mut twos = rounds.remainder().chunks_exact(2);
        for two in &mut twos {
            self.write_u64(pack(two));
        }
        for &(lo, hi) in twos.remainder() {
            self.write_u64((lo as u64) | ((hi as u64) << 32));
        }
    }

    /// Fold a complex slice, one word per value: the odd-constant multiply
    /// keeps the real part injective, so no single-bit flip in either
    /// component can cancel against the other.
    pub fn write_complex_slice(&mut self, values: &[crate::complex::Complex64]) {
        self.write_bulk(values, |w| {
            w.re.to_bits().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ w.im.to_bits()
        });
    }

    /// Finish: fold the lanes and count through a splitmix64 avalanche.
    pub fn finish(&self) -> u64 {
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut out = mix(self.count);
        for &lane in &self.lanes {
            out = mix(out ^ lane);
        }
        out
    }
}

/// How much to trust certificates when loading and building from wisdom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertPolicy {
    /// Default: wisdom files must carry a valid certificate on every entry
    /// ([`crate::wisdom::Wisdom::load`] rejects the file otherwise), and the
    /// planner re-verifies the full certificate against every tuned plan it
    /// builds. Programmatically installed wisdom
    /// ([`crate::planner::Planner::set_wisdom`]) may omit certificates —
    /// that path is code, not data — but any certificate present is checked.
    #[default]
    Verify,
    /// Escape hatch: skip certificate checks entirely (tuning shape
    /// validation still runs — an ill-formed permutation is never applied).
    /// For wisdom produced by older tooling or deliberate experiments.
    Trust,
}

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// The seal digest does not cover the certificate's own fields — some
    /// field was edited after issue.
    Tampered,
    /// Issued against a different [`WORKLOAD_REVISION`] — the decomposition
    /// authority changed since; the evidence is about tables that no longer
    /// exist.
    ForeignRevision {
        /// Revision recorded in the certificate.
        found: u64,
        /// Revision of the running code.
        expected: u64,
    },
    /// The schedule digest does not match the (key, tuning) pair the entry
    /// claims to certify — the tuning was swapped or edited under the
    /// certificate.
    ScheduleMismatch,
    /// The table digest does not match the tables the current code builds
    /// for that (key, tuning) — lowering drift or a corrupted plan.
    TableMismatch,
    /// The tuning itself does not fit the plan (not a certificate failure,
    /// but verification must refuse to digest an ill-formed tuning).
    InvalidTuning(String),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Tampered => write!(f, "certificate seal mismatch (field edited)"),
            CertError::ForeignRevision { found, expected } => write!(
                f,
                "certificate is for workload revision {found}, this build is {expected}"
            ),
            CertError::ScheduleMismatch => {
                write!(f, "schedule digest mismatch (tuning edited or swapped)")
            }
            CertError::TableMismatch => {
                write!(f, "table digest mismatch (lowering drift or corruption)")
            }
            CertError::InvalidTuning(why) => write!(f, "invalid tuning: {why}"),
        }
    }
}

/// Digest of the schedule a `(key, tuning)` pair selects: the plan identity
/// plus every tuning-controlled degree of freedom (pool permutation, guided
/// split), normalized so an identity tuning and `None` digest equally.
///
/// The *graph* the schedule runs over is fixed by `(n_log2, radix_log2,
/// version)` and the workload revision; its soundness is pass 1–3's job
/// (witnessed in [`Certificate::hb_witness`]), so the digest only has to
/// pin the inputs a wisdom file can actually vary. `O(pool)`, no plan
/// build, no graph materialization.
pub fn schedule_digest(key: PlanKey, tuning: Option<&ScheduleTuning>) -> Result<u64, CertError> {
    // Composite kinds lower to an inner complex FFT of the kind's inner
    // size; the tuning-controlled pool/split apply to that inner plan.
    let inner_log2 = key.kind.inner_n_log2(key.n_log2);
    let fft = FftPlan::new(inner_log2, key.radix_log2.min(inner_log2));
    if let Some(t) = tuning {
        t.validate(&fft).map_err(CertError::InvalidTuning)?;
    }
    let mut d = Digest::new_tagged(0x5348_4544); // "SHED"
    d.write_u32(key.n_log2);
    d.write_u32(key.radix_log2);
    write_version(&mut d, key.version);
    d.write_u64(layout_tag(key.layout));
    write_kind(&mut d, key.kind);
    match tuning.and_then(|t| t.transpose_block_log2) {
        Some(block) => {
            d.write_u64(1);
            d.write_u32(block);
        }
        None => d.write_u64(0),
    }
    d.write_usize(fft.stages());
    d.write_usize(fft.codelets_per_stage());
    match tuning.and_then(|t| t.pool_order.as_ref()) {
        Some(order) => {
            d.write_u64(1);
            for &idx in order {
                d.write_usize(idx);
            }
        }
        None => d.write_u64(0),
    }
    match tuning.and_then(|t| t.last_early) {
        Some(split) => {
            d.write_u64(1);
            d.write_usize(split);
        }
        None => d.write_u64(0),
    }
    Ok(d.finish())
}

/// Digest of the *independent* data behind a built plan's flattened
/// execution tables: per-stage gather indices, the butterfly pair pattern,
/// the bit-reversal swap list, the twiddle factor table (in stored slot
/// order, so it is layout-sensitive), and the lengths of the expanded
/// per-codelet twiddle runs.
///
/// The expanded twiddle-run *values* are deliberately not re-streamed:
/// they are a deterministic expansion of the twiddle table digested here
/// (`workload::append_twiddle_run`), they dominate a plan's table bytes
/// (for large plans the digest would be DRAM-bandwidth-bound and alone
/// blow the < 5% verification budget), and expansion drift is exactly what
/// pass 4's FG405 bitwise differential check covers at certification time
/// and in the CI `fgcheck --all` sweep. Everything the `unsafe` hot path's
/// *safety* rests on — gather bounds and disjointness, pair bounds, swap
/// bounds — is covered byte-for-byte.
pub fn table_digest(plan: &Plan) -> u64 {
    let fft = plan.fft_plan();
    // Packing density is a function of plan *structure* (already pinned by
    // the digest stream itself), never of table contents, so both sides of
    // a verification always agree on it.
    let narrow_index = fft.n_log2() <= 16; // gather / swap indices < 2^16
    let narrow_pair = fft.radix_log2() <= 16; // butterfly slots < 2^16
    let mut d = Digest::new_tagged(0x5441_424c); // "TABL"
    let stages = fft.stages();
    d.write_usize(stages);
    for stage in 0..stages {
        let table = plan.stage_table(stage);
        d.write_usize(table.gather.len());
        if narrow_index {
            d.write_u32_slice_narrow(table.gather);
        } else {
            d.write_u32_slice(table.gather);
        }
        d.write_usize(table.pairs.len());
        if narrow_pair {
            d.write_pair_slice_narrow(table.pairs);
        } else {
            d.write_pair_slice(table.pairs);
        }
        d.write_usize(table.twiddles.len());
    }
    d.write_usize(plan.twiddles().len());
    d.write_complex_slice(plan.twiddles().values());
    d.write_usize(plan.bitrev_swaps().len());
    if narrow_index {
        d.write_pair_slice_narrow(plan.bitrev_swaps());
    } else {
        d.write_pair_slice(plan.bitrev_swaps());
    }
    // Kind extensions: the untangle twiddle table of a real plan is hot-path
    // data exactly like the main twiddle table, so it is covered bitwise;
    // a 2-D plan folds in its column plan's full table digest recursively.
    match plan.untangle() {
        Some(table) => {
            d.write_u64(1);
            d.write_usize(table.len());
            d.write_complex_slice(table);
        }
        None => d.write_u64(0),
    }
    match plan.transpose_block_log2() {
        Some(block) => {
            d.write_u64(1);
            d.write_u32(block);
        }
        None => d.write_u64(0),
    }
    match plan.col_plan() {
        Some(col) => {
            d.write_u64(1);
            d.write_u64(table_digest(col));
        }
        None => d.write_u64(0),
    }
    d.finish()
}

fn write_version(d: &mut Digest, version: crate::exec::Version) {
    use crate::exec::{SeedOrder, Version};
    let order_tag = |o: SeedOrder| match o {
        SeedOrder::Natural => (0u64, 0u64),
        SeedOrder::Reversed => (1, 0),
        SeedOrder::EvenOdd => (2, 0),
        SeedOrder::Random(seed) => (3, seed),
    };
    let (tag, a, b) = match version {
        Version::Coarse => (0u64, 0, 0),
        Version::CoarseHash => (1, 0, 0),
        Version::Fine(o) => {
            let (x, y) = order_tag(o);
            (2, x, y)
        }
        Version::FineHash(o) => {
            let (x, y) = order_tag(o);
            (3, x, y)
        }
        Version::FineGuided => (4, 0, 0),
    };
    d.write_u64(tag);
    d.write_u64(a);
    d.write_u64(b);
}

fn write_kind(d: &mut Digest, kind: TransformKind) {
    match kind {
        TransformKind::C2C => d.write_u64(0),
        TransformKind::R2C => d.write_u64(1),
        TransformKind::C2R => d.write_u64(2),
        TransformKind::C2C2D {
            rows_log2,
            cols_log2,
        } => {
            d.write_u64(3);
            d.write_u32(rows_log2);
            d.write_u32(cols_log2);
        }
    }
}

fn layout_tag(layout: TwiddleLayout) -> u64 {
    match layout {
        TwiddleLayout::Linear => 0,
        TwiddleLayout::BitReversedHash => 1,
        TwiddleLayout::MultiplicativeHash => 2,
    }
}

/// Compact, serializable evidence that a tuned schedule was statically
/// verified against the lowering the current code performs.
///
/// Issued by `fgcheck`'s `certify` (which runs all four static passes and
/// refuses to issue over any error) or, for structural-only needs (tests,
/// programmatic wisdom), by [`Certificate::for_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// [`WORKLOAD_REVISION`] of the issuing build.
    pub workload_rev: u64,
    /// [`schedule_digest`] of the certified `(key, tuning)`.
    pub schedule: u64,
    /// [`table_digest`] of the plan built from that pair.
    pub tables: u64,
    /// Witness of the happens-before cover fgcheck computed (digest of the
    /// per-task level assignment): opaque here, re-derivable only by
    /// re-running pass 2 — which the CI `fgcheck --all` sweep does. Zero
    /// for structural certificates issued without the static passes.
    pub hb_witness: u64,
    /// Worst static per-level bank peak/mean ratio fgcheck observed, in
    /// thousandths (pass 3's FG301 bound). Zero for structural
    /// certificates.
    pub bank_bound_milli: u64,
    /// Self-digest over every field above: any post-issue edit (including
    /// to the witness or the bound) fails [`Certificate::verify_static`]
    /// with [`CertError::Tampered`].
    pub seal: u64,
}

impl Certificate {
    /// Assemble and seal a certificate from already-computed digests (the
    /// issuing checker's entry point).
    pub fn new(schedule: u64, tables: u64, hb_witness: u64, bank_bound_milli: u64) -> Self {
        let mut cert = Self {
            workload_rev: WORKLOAD_REVISION,
            schedule,
            tables,
            hb_witness,
            bank_bound_milli,
            seal: 0,
        };
        cert.seal = cert.compute_seal();
        cert
    }

    /// Structural certificate for a built plan: digests only, no pass-1–3
    /// evidence (`hb_witness`/`bank_bound_milli` zero). Sufficient for the
    /// planner's integrity checks; `fgcheck`'s `certify` issues the full
    /// version.
    pub fn for_plan(plan: &Plan) -> Result<Self, CertError> {
        let schedule = schedule_digest(plan.key(), plan.tuning())?;
        Ok(Self::new(schedule, table_digest(plan), 0, 0))
    }

    fn compute_seal(&self) -> u64 {
        let mut d = Digest::new_tagged(0x5345_414c); // "SEAL"
        d.write_u64(self.workload_rev);
        d.write_u64(self.schedule);
        d.write_u64(self.tables);
        d.write_u64(self.hb_witness);
        d.write_u64(self.bank_bound_milli);
        d.finish()
    }

    /// Cheap checks that need no plan build: seal, workload revision, and
    /// the schedule digest against `(key, tuning)`. `O(pool)`.
    pub fn verify_static(
        &self,
        key: PlanKey,
        tuning: Option<&ScheduleTuning>,
    ) -> Result<(), CertError> {
        if self.seal != self.compute_seal() {
            return Err(CertError::Tampered);
        }
        if self.workload_rev != WORKLOAD_REVISION {
            return Err(CertError::ForeignRevision {
                found: self.workload_rev,
                expected: WORKLOAD_REVISION,
            });
        }
        if schedule_digest(key, tuning)? != self.schedule {
            return Err(CertError::ScheduleMismatch);
        }
        Ok(())
    }

    /// Full verification against a built plan: [`Certificate::verify_static`]
    /// plus [`table_digest`] over the plan's independent table data — the
    /// planner runs this once per cold tuned build.
    pub fn verify_plan(&self, plan: &Plan) -> Result<(), CertError> {
        self.verify_static(plan.key(), plan.tuning())?;
        if table_digest(plan) != self.tables {
            return Err(CertError::TableMismatch);
        }
        Ok(())
    }

    /// JSON form for the wisdom file. Digests are hex strings: the hand-
    /// rolled JSON layer stores numbers as `f64`, which cannot hold a full
    /// `u64` digest exactly.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("workload_rev", Value::Num(self.workload_rev as f64)),
            ("schedule", Value::Str(format!("{:016x}", self.schedule))),
            ("tables", Value::Str(format!("{:016x}", self.tables))),
            (
                "hb_witness",
                Value::Str(format!("{:016x}", self.hb_witness)),
            ),
            ("bank_bound_milli", Value::Num(self.bank_bound_milli as f64)),
            ("seal", Value::Str(format!("{:016x}", self.seal))),
        ])
    }

    /// Inverse of [`Certificate::to_json`]. Errors name the first schema
    /// violation; a parsed certificate is *not* yet verified.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let hex = |field: &str| -> Result<u64, String> {
            let s = value
                .get(field)
                .and_then(Value::as_str)
                .ok_or(format!("missing cert {field}"))?;
            u64::from_str_radix(s, 16).map_err(|_| format!("bad cert {field} {s:?}"))
        };
        Ok(Self {
            workload_rev: value
                .get("workload_rev")
                .and_then(Value::as_u64)
                .ok_or("missing cert workload_rev")?,
            schedule: hex("schedule")?,
            tables: hex("tables")?,
            hb_witness: hex("hb_witness")?,
            bank_bound_milli: value
                .get("bank_bound_milli")
                .and_then(Value::as_u64)
                .ok_or("missing cert bank_bound_milli")?,
            seal: hex("seal")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{SeedOrder, Version};
    use fgsupport::json;

    fn sample_plan() -> Plan {
        let key = PlanKey::new(
            1 << 10,
            Version::Fine(SeedOrder::Natural),
            TwiddleLayout::Linear,
        );
        let tuning = ScheduleTuning {
            pool_order: Some((0..16).rev().collect()),
            last_early: None,
            transpose_block_log2: None,
        };
        Plan::build_tuned(key, Some(&tuning))
    }

    #[test]
    fn structural_certificate_round_trips_and_verifies() {
        let plan = sample_plan();
        let cert = Certificate::for_plan(&plan).unwrap();
        cert.verify_plan(&plan).unwrap();
        let text = cert.to_json().to_string_pretty();
        let back = Certificate::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cert);
        back.verify_plan(&plan).unwrap();
    }

    #[test]
    fn certificates_cover_tables_for_all_backends() {
        // A backend never builds tables of its own — `prepare` binds the
        // same Arc'd plan — so one certificate over the plan covers its
        // prepared form under every backend. Pin that: the plan reachable
        // through each PreparedPlan verifies against the one certificate.
        let plan = std::sync::Arc::new(sample_plan());
        let cert = Certificate::for_plan(&plan).unwrap();
        for sel in [
            crate::backend::BackendSel::SCALAR,
            crate::backend::BackendSel::SIMD,
            crate::backend::BackendSel::THREADED_SCALAR,
            crate::backend::BackendSel::THREADED_SIMD,
        ] {
            let prepared = sel.build().prepare(&plan);
            cert.verify_plan(prepared.plan())
                .unwrap_or_else(|e| panic!("{sel}: {e:?}"));
            assert!(
                std::sync::Arc::ptr_eq(prepared.plan(), &plan),
                "{sel}: prepare must bind the certified plan, not re-lower it"
            );
        }
    }

    #[test]
    fn every_field_edit_is_detected() {
        let plan = sample_plan();
        let cert = Certificate::for_plan(&plan).unwrap();
        for (name, edited) in [
            (
                "workload_rev",
                Certificate {
                    workload_rev: cert.workload_rev + 1,
                    ..cert
                },
            ),
            (
                "schedule",
                Certificate {
                    schedule: cert.schedule ^ 1,
                    ..cert
                },
            ),
            (
                "tables",
                Certificate {
                    tables: cert.tables ^ 1,
                    ..cert
                },
            ),
            (
                "hb_witness",
                Certificate {
                    hb_witness: cert.hb_witness ^ 1,
                    ..cert
                },
            ),
            (
                "bank_bound_milli",
                Certificate {
                    bank_bound_milli: cert.bank_bound_milli + 1,
                    ..cert
                },
            ),
            (
                "seal",
                Certificate {
                    seal: cert.seal ^ 1,
                    ..cert
                },
            ),
        ] {
            assert_eq!(
                edited.verify_plan(&plan),
                Err(CertError::Tampered),
                "edited {name} must break the seal"
            );
        }
    }

    #[test]
    fn foreign_revision_and_swapped_tuning_are_rejected() {
        let plan = sample_plan();
        let cert = Certificate::for_plan(&plan).unwrap();
        // Re-seal with a foreign revision: the seal passes, revision fails.
        let mut foreign = cert;
        foreign.workload_rev = WORKLOAD_REVISION + 7;
        foreign.seal = foreign.compute_seal();
        assert!(matches!(
            foreign.verify_plan(&plan),
            Err(CertError::ForeignRevision { .. })
        ));
        // Same key, different tuning: schedule digest must differ.
        let other = Plan::build_tuned(plan.key(), None);
        assert_eq!(cert.verify_plan(&other), Err(CertError::ScheduleMismatch));
    }

    #[test]
    fn schedule_digest_normalizes_identity_tuning() {
        let key = PlanKey::new(1 << 9, Version::FineGuided, TwiddleLayout::BitReversedHash);
        let identity = ScheduleTuning::identity();
        assert_eq!(
            schedule_digest(key, None).unwrap(),
            schedule_digest(key, Some(&identity)).unwrap()
        );
        let tuned = ScheduleTuning {
            pool_order: Some((0..8).rev().collect()),
            last_early: None,
            transpose_block_log2: None,
        };
        assert_ne!(
            schedule_digest(key, None).unwrap(),
            schedule_digest(key, Some(&tuned)).unwrap()
        );
    }

    #[test]
    fn kind_plans_carry_distinct_verifiable_certificates() {
        let n = 1 << 8;
        let keys = [
            PlanKey::with_kind(
                TransformKind::R2C,
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            ),
            PlanKey::with_kind(
                TransformKind::C2R,
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            ),
            PlanKey::with_kind(
                TransformKind::C2C2D {
                    rows_log2: 4,
                    cols_log2: 4,
                },
                n,
                Version::FineGuided,
                TwiddleLayout::Linear,
                6,
            ),
        ];
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            let plan = Plan::build(key);
            let cert = Certificate::for_plan(&plan).unwrap();
            cert.verify_plan(&plan).unwrap();
            // R2C and C2R build byte-identical tables (same inner plan and
            // untangle values) — the *schedule* digest is what separates
            // kinds, so that is what must be collision-free.
            assert!(
                seen.insert(cert.schedule),
                "{:?} schedule digest collides",
                key.kind
            );
        }
        let c2c = Plan::build(PlanKey::new(n, Version::FineGuided, TwiddleLayout::Linear));
        let base = Certificate::for_plan(&c2c).unwrap();
        assert!(
            seen.insert(base.schedule),
            "C2C digest must differ from every composite kind"
        );
    }

    #[test]
    fn transpose_block_tuning_changes_schedule_digest() {
        let key = PlanKey::with_kind(
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 5,
            },
            1 << 10,
            Version::FineGuided,
            TwiddleLayout::Linear,
            6,
        );
        let tuned = ScheduleTuning {
            pool_order: None,
            last_early: None,
            transpose_block_log2: Some(3),
        };
        assert_ne!(
            schedule_digest(key, None).unwrap(),
            schedule_digest(key, Some(&tuned)).unwrap(),
            "transpose block size is a certified degree of freedom"
        );
    }

    #[test]
    fn invalid_tuning_is_an_error_not_a_panic() {
        let key = PlanKey::new(1 << 10, Version::FineGuided, TwiddleLayout::Linear);
        let bad = ScheduleTuning {
            pool_order: Some(vec![0, 1, 2]), // wrong length for cps = 16
            last_early: None,
            transpose_block_log2: None,
        };
        assert!(matches!(
            schedule_digest(key, Some(&bad)),
            Err(CertError::InvalidTuning(_))
        ));
    }
}
