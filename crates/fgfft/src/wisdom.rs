//! Persistent autotuning wisdom, FFTW-style.
//!
//! The `fgtune` autotuner measures which schedule tuning (pool order,
//! guided split) and runtime parameters (workers, batch size) are fastest
//! for each [`PlanKey`] *on this machine*, and persists the answer here so
//! it is paid for once: the [`crate::planner::Planner`] consults a loaded
//! [`Wisdom`] when materializing a plan, and `fgserve`'s `FftService`
//! loads a wisdom file at startup via its `wisdom_path` config.
//!
//! Design constraints, in order:
//!
//! * **Corrupt-file tolerant.** A missing, truncated, or hand-mangled
//!   wisdom file must never take the service down — [`Wisdom::load`]
//!   always returns a usable (possibly empty) store plus a
//!   [`WisdomStatus`] saying what happened.
//! * **Machine-scoped.** Measured wall times are facts about one machine.
//!   Every file records a [`machine_fingerprint`]; a file measured
//!   elsewhere is ignored wholesale (status
//!   [`WisdomStatus::FingerprintMismatch`]) rather than half-trusted.
//! * **Versioned.** The JSON carries [`WISDOM_FORMAT`]; an unknown format
//!   is ignored, not guessed at.
//! * **Atomic writes.** [`Wisdom::save`] writes a temporary file and
//!   renames it into place, so a concurrent reader sees either the old or
//!   the new wisdom, never a torn file.
//! * **Certified.** A wisdom file steers the planner's `unsafe` hot path,
//!   so by default every entry must carry a [`Certificate`] that
//!   re-verifies against the running code ([`CertPolicy::Verify`]):
//!   entries with semantically invalid tunings load as
//!   [`WisdomStatus::Invalid`], missing certificates as
//!   [`WisdomStatus::Uncertified`], and failed verification (stale,
//!   tampered, or foreign-revision evidence) as
//!   [`WisdomStatus::CertificateMismatch`] — each ignored wholesale, like
//!   a fingerprint mismatch. [`CertPolicy::Trust`] is the escape hatch.

use crate::backend::BackendSel;
use crate::cert::{CertPolicy, Certificate};
use crate::exec::{SeedOrder, Version};
use crate::planner::PlanKey;
use crate::twiddle::TwiddleLayout;
use crate::workload::ScheduleTuning;
use fgsupport::json::{self, Value};
use std::path::Path;

/// Version of the on-disk JSON schema. Bump on incompatible change; loads
/// of unknown formats report [`WisdomStatus::FormatMismatch`] and yield an
/// empty store. Format 2 added the per-entry schedule certificate; format 3
/// added backend selection (`backend` + `simd_radix_log2`); format 4 added
/// transform kinds (`kind`, absent means `c2c`) and the 2-D transpose block
/// axis (`transpose_block_log2`). Legacy files still decode (kind defaults
/// to complex, backend to scalar) but their certificates were issued
/// against an older workload revision, so under [`CertPolicy::Verify`]
/// they degrade to [`WisdomStatus::Uncertified`] — never a parse panic.
pub const WISDOM_FORMAT: u64 = 4;

/// Previous schema versions, still accepted by the decoder so an upgrade
/// never crashes on an existing wisdom file (they degrade; see
/// [`WISDOM_FORMAT`]).
const LEGACY_FORMATS: [u64; 2] = [2, 3];

/// A stable identifier of the measuring machine: architecture, OS, and
/// hardware parallelism. Coarse on purpose — it must be cheap, dependency
/// free, and wrong only in the safe direction (two fingerprint-equal
/// machines with different cache hierarchies share wisdom that is merely
/// suboptimal, never incorrect: tuning cannot change results).
pub fn machine_fingerprint() -> String {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{}-{}-{}t",
        std::env::consts::ARCH,
        std::env::consts::OS,
        threads
    )
}

/// The tuned parameters measured best for one [`PlanKey`].
#[derive(Debug, Clone, PartialEq)]
pub struct WisdomEntry {
    /// The plan identity this entry tunes.
    pub key: PlanKey,
    /// Schedule overrides (pool order, guided split) the planner applies
    /// when building the plan for `key`.
    pub tuning: ScheduleTuning,
    /// Measured-best runtime worker count.
    pub workers: usize,
    /// Measured-best serving batch size.
    pub batch: usize,
    /// Measured-best execution backend (engine family + SIMD fusion
    /// radix). Legacy format-2 files decode as [`BackendSel::SCALAR`].
    pub backend: BackendSel,
    /// Median wall time of the tuned schedule, nanoseconds.
    pub median_ns: u64,
    /// Median wall time of the version's own (seed) schedule under the
    /// same measurement, nanoseconds — kept so reports can show the gain.
    pub seed_median_ns: u64,
    /// Static-verification certificate the checker issued for this tuning
    /// (see [`crate::cert`]). Required on loaded files under
    /// [`CertPolicy::Verify`]; optional on programmatically installed
    /// wisdom.
    pub cert: Option<Certificate>,
}

/// What [`Wisdom::load`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WisdomStatus {
    /// File read, parsed, fingerprint matched: `entries` tunings adopted.
    Loaded {
        /// Number of entries adopted.
        entries: usize,
    },
    /// No file at the path — fresh store.
    Missing,
    /// Unreadable, unparseable, or schema-invalid — ignored.
    Corrupt,
    /// Parsed, but written by a different schema version — ignored.
    FormatMismatch,
    /// Parsed, but measured on a different machine — ignored.
    FingerprintMismatch,
    /// Parsed, but at least one entry's tuning does not fit its plan
    /// (wrong-length or non-permutation pool order, split past the last
    /// stage) — ignored wholesale instead of panicking later in
    /// `ScheduleSpec::of_tuned`.
    Invalid,
    /// Parsed, but at least one entry carries no certificate while the
    /// policy requires one — ignored. Also the degraded status of a
    /// legacy format-2 file under [`CertPolicy::Verify`]: it decodes
    /// fine, but its measurements predate backend selection.
    Uncertified,
    /// Parsed, but at least one entry's certificate failed verification
    /// (tampered fields, foreign workload revision, or a schedule digest
    /// that does not match the entry's tuning) — ignored.
    CertificateMismatch,
}

impl WisdomStatus {
    /// True when the load produced usable entries.
    pub fn is_loaded(&self) -> bool {
        matches!(self, WisdomStatus::Loaded { .. })
    }
}

/// A machine-scoped store of tuned plan parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Wisdom {
    fingerprint: String,
    entries: Vec<WisdomEntry>,
}

impl Wisdom {
    /// Empty store fingerprinted for this machine.
    pub fn new() -> Self {
        Self::with_fingerprint(machine_fingerprint())
    }

    /// Empty store with an explicit fingerprint (tests, cross-machine
    /// tooling).
    pub fn with_fingerprint(fingerprint: String) -> Self {
        Self {
            fingerprint,
            entries: Vec::new(),
        }
    }

    /// The fingerprint of the measuring machine.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[WisdomEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert `entry`, replacing any existing entry for the same key —
    /// newest measurement wins.
    pub fn insert(&mut self, entry: WisdomEntry) {
        match self.entries.iter_mut().find(|e| e.key == entry.key) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// The entry tuned for `key`, if any.
    pub fn lookup(&self, key: &PlanKey) -> Option<&WisdomEntry> {
        self.entries.iter().find(|e| e.key == *key)
    }

    /// Serialize to the on-disk JSON document.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("format", Value::Num(WISDOM_FORMAT as f64)),
            ("fingerprint", Value::Str(self.fingerprint.clone())),
            (
                "entries",
                Value::Arr(self.entries.iter().map(entry_to_json).collect()),
            ),
        ])
    }

    /// Parse the on-disk JSON document (the current format, or the legacy
    /// format 2 whose entries lack backend fields — those decode with
    /// [`BackendSel::SCALAR`]). Errors name the first violation — callers
    /// that must not fail use [`Wisdom::load`] instead.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let format = value
            .get("format")
            .and_then(Value::as_u64)
            .ok_or("missing format")?;
        if format != WISDOM_FORMAT && !LEGACY_FORMATS.contains(&format) {
            return Err(format!("format {format} != {WISDOM_FORMAT}"));
        }
        let fingerprint = value
            .get("fingerprint")
            .and_then(Value::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let Some(Value::Arr(items)) = value.get("entries") else {
            return Err("missing entries array".to_string());
        };
        let mut wisdom = Self::with_fingerprint(fingerprint);
        for item in items {
            wisdom.insert(entry_from_json(item)?);
        }
        Ok(wisdom)
    }

    /// Load from `path` with the default certificate policy
    /// ([`CertPolicy::Verify`]): every entry must carry a certificate that
    /// passes [`Certificate::verify_static`]. See [`Wisdom::load_with`].
    pub fn load(path: &Path) -> (Self, WisdomStatus) {
        Self::load_with(path, CertPolicy::Verify)
    }

    /// Load from `path`, tolerating every failure mode: the returned store
    /// is always usable (empty on any problem, fingerprinted for this
    /// machine) and the status says what happened. A file measured on a
    /// different machine, written by a different format version, holding an
    /// ill-formed tuning, or (under [`CertPolicy::Verify`]) missing or
    /// failing a certificate is ignored wholesale.
    pub fn load_with(path: &Path, policy: CertPolicy) -> (Self, WisdomStatus) {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::new(), WisdomStatus::Missing)
            }
            Err(_) => return (Self::new(), WisdomStatus::Corrupt),
        };
        let value = match json::parse(&text) {
            Ok(value) => value,
            Err(_) => return (Self::new(), WisdomStatus::Corrupt),
        };
        let format = match value.get("format").and_then(Value::as_u64) {
            Some(f) if f == WISDOM_FORMAT || LEGACY_FORMATS.contains(&f) => f,
            Some(_) => return (Self::new(), WisdomStatus::FormatMismatch),
            None => return (Self::new(), WisdomStatus::Corrupt),
        };
        let wisdom = match Self::from_json(&value) {
            Ok(wisdom) => wisdom,
            Err(_) => return (Self::new(), WisdomStatus::Corrupt),
        };
        if wisdom.fingerprint != machine_fingerprint() {
            return (Self::new(), WisdomStatus::FingerprintMismatch);
        }
        for entry in &wisdom.entries {
            // A wisdom file is data: a tuning that does not fit its plan
            // must degrade here, never panic later in plan construction.
            // Composite kinds tune their inner complex plan.
            let inner = entry.key.kind.inner_n_log2(entry.key.n_log2);
            let fft = crate::plan::FftPlan::new(inner, entry.key.radix_log2.min(inner));
            if entry.tuning.validate(&fft).is_err() {
                return (Self::new(), WisdomStatus::Invalid);
            }
        }
        if LEGACY_FORMATS.contains(&format) && policy == CertPolicy::Verify {
            // A legacy file decodes, but its measurements (and certificates)
            // predate the current plan identity — backend selection for
            // format 2, transform kinds for format 3; under the strict
            // policy it degrades wholesale rather than half-applying. Trust
            // mode adopts it with the decoder's defaults.
            return (Self::new(), WisdomStatus::Uncertified);
        }
        if policy == CertPolicy::Verify {
            for entry in &wisdom.entries {
                let Some(cert) = &entry.cert else {
                    return (Self::new(), WisdomStatus::Uncertified);
                };
                if cert.verify_static(entry.key, Some(&entry.tuning)).is_err() {
                    return (Self::new(), WisdomStatus::CertificateMismatch);
                }
            }
        }
        let entries = wisdom.len();
        (wisdom, WisdomStatus::Loaded { entries })
    }

    /// Atomically write to `path`: the document lands in a sibling
    /// temporary file first and is renamed into place, so a concurrent
    /// [`Wisdom::load`] sees either the previous file or this one, never a
    /// torn write.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let text = self.to_json().to_string_pretty();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Stable string form of a version for the wisdom file (round-trips
/// through [`version_from_string`], including fine seed orders).
pub fn version_to_string(version: Version) -> String {
    fn order(order: SeedOrder) -> String {
        match order {
            SeedOrder::Natural => "natural".to_string(),
            SeedOrder::Reversed => "reversed".to_string(),
            SeedOrder::EvenOdd => "even-odd".to_string(),
            SeedOrder::Random(seed) => format!("random:{seed}"),
        }
    }
    match version {
        Version::Coarse => "coarse".to_string(),
        Version::CoarseHash => "coarse-hash".to_string(),
        Version::Fine(o) => format!("fine:{}", order(o)),
        Version::FineHash(o) => format!("fine-hash:{}", order(o)),
        Version::FineGuided => "fine-guided".to_string(),
    }
}

/// Inverse of [`version_to_string`].
pub fn version_from_string(s: &str) -> Result<Version, String> {
    fn order(s: &str) -> Result<SeedOrder, String> {
        match s {
            "natural" => Ok(SeedOrder::Natural),
            "reversed" => Ok(SeedOrder::Reversed),
            "even-odd" => Ok(SeedOrder::EvenOdd),
            _ => match s.strip_prefix("random:") {
                Some(seed) => seed
                    .parse::<u64>()
                    .map(SeedOrder::Random)
                    .map_err(|_| format!("bad random seed in {s:?}")),
                None => Err(format!("unknown seed order {s:?}")),
            },
        }
    }
    match s {
        "coarse" => Ok(Version::Coarse),
        "coarse-hash" => Ok(Version::CoarseHash),
        "fine-guided" => Ok(Version::FineGuided),
        _ => {
            if let Some(rest) = s.strip_prefix("fine-hash:") {
                order(rest).map(Version::FineHash)
            } else if let Some(rest) = s.strip_prefix("fine:") {
                order(rest).map(Version::Fine)
            } else {
                Err(format!("unknown version {s:?}"))
            }
        }
    }
}

/// Stable string form of a twiddle layout for the wisdom file.
pub fn layout_to_string(layout: TwiddleLayout) -> &'static str {
    match layout {
        TwiddleLayout::Linear => "linear",
        TwiddleLayout::BitReversedHash => "bitrev-hash",
        TwiddleLayout::MultiplicativeHash => "mult-hash",
    }
}

/// Inverse of [`layout_to_string`].
pub fn layout_from_string(s: &str) -> Result<TwiddleLayout, String> {
    match s {
        "linear" => Ok(TwiddleLayout::Linear),
        "bitrev-hash" => Ok(TwiddleLayout::BitReversedHash),
        "mult-hash" => Ok(TwiddleLayout::MultiplicativeHash),
        _ => Err(format!("unknown layout {s:?}")),
    }
}

fn entry_to_json(entry: &WisdomEntry) -> Value {
    let pool_order = match &entry.tuning.pool_order {
        Some(order) => Value::Arr(order.iter().map(|&i| Value::Num(i as f64)).collect()),
        None => Value::Null,
    };
    let last_early = match entry.tuning.last_early {
        Some(s) => Value::Num(s as f64),
        None => Value::Null,
    };
    let transpose_block_log2 = match entry.tuning.transpose_block_log2 {
        Some(b) => Value::Num(b as f64),
        None => Value::Null,
    };
    Value::obj(vec![
        ("n_log2", Value::Num(entry.key.n_log2 as f64)),
        ("radix_log2", Value::Num(entry.key.radix_log2 as f64)),
        ("version", Value::Str(version_to_string(entry.key.version))),
        (
            "layout",
            Value::Str(layout_to_string(entry.key.layout).to_string()),
        ),
        ("kind", Value::Str(entry.key.kind.as_string())),
        ("pool_order", pool_order),
        ("last_early", last_early),
        ("transpose_block_log2", transpose_block_log2),
        ("workers", Value::Num(entry.workers as f64)),
        ("batch", Value::Num(entry.batch as f64)),
        ("backend", Value::Str(entry.backend.kind_str().to_string())),
        (
            "simd_radix_log2",
            Value::Num(entry.backend.simd_radix_log2 as f64),
        ),
        ("median_ns", Value::Num(entry.median_ns as f64)),
        ("seed_median_ns", Value::Num(entry.seed_median_ns as f64)),
        (
            "cert",
            match &entry.cert {
                Some(cert) => cert.to_json(),
                None => Value::Null,
            },
        ),
    ])
}

fn entry_from_json(value: &Value) -> Result<WisdomEntry, String> {
    let num = |field: &str| -> Result<u64, String> {
        value
            .get(field)
            .and_then(Value::as_u64)
            .ok_or(format!("missing {field}"))
    };
    let n_log2 = num("n_log2")? as u32;
    let radix_log2 = num("radix_log2")? as u32;
    if n_log2 == 0 || n_log2 > 63 {
        return Err(format!("n_log2 {n_log2} out of range"));
    }
    if !(1..=crate::plan::MAX_RADIX_LOG2).contains(&radix_log2) {
        return Err(format!("radix_log2 {radix_log2} out of range"));
    }
    let version = version_from_string(
        value
            .get("version")
            .and_then(Value::as_str)
            .ok_or("missing version")?,
    )?;
    let layout = layout_from_string(
        value
            .get("layout")
            .and_then(Value::as_str)
            .ok_or("missing layout")?,
    )?;
    // Transform kind arrived with format 4; its absence (a legacy file)
    // decodes as the plain complex transform. Validate before constructing
    // the key: `PlanKey::with_kind` panics on a kind/size mismatch, and a
    // wisdom file is data that must degrade, not crash.
    let kind = match value.get("kind") {
        None | Some(Value::Null) => crate::workload::TransformKind::C2C,
        Some(v) => {
            let name = v.as_str().ok_or("kind must be a string")?;
            crate::workload::TransformKind::parse(name)
                .ok_or_else(|| format!("unknown kind {name:?}"))?
        }
    };
    kind.validate(n_log2)
        .map_err(|why| format!("kind does not fit plan: {why}"))?;
    let key = PlanKey::with_kind(kind, 1usize << n_log2, version, layout, radix_log2);
    let pool_order = match value.get("pool_order") {
        None | Some(Value::Null) => None,
        Some(Value::Arr(items)) => {
            let mut order = Vec::with_capacity(items.len());
            for item in items {
                order.push(item.as_u64().ok_or("non-integer pool_order entry")? as usize);
            }
            Some(order)
        }
        Some(_) => return Err("pool_order must be an array or null".to_string()),
    };
    let last_early = match value.get("last_early") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer last_early")? as usize),
    };
    let transpose_block_log2 = match value.get("transpose_block_log2") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer transpose_block_log2")? as u32),
    };
    let tuning = ScheduleTuning {
        pool_order,
        last_early,
        transpose_block_log2,
    };
    // Semantic validity of the tuning (permutation length, split bounds) is
    // checked by `load_with`, not here: `from_json` stays a pure schema
    // decoder so callers can distinguish `Corrupt` from `Invalid`.
    let cert = match value.get("cert") {
        None | Some(Value::Null) => None,
        Some(v) => Some(Certificate::from_json(v)?),
    };
    // Backend fields arrived with format 3; their absence (a legacy file)
    // decodes as the scalar backend, which runs every plan correctly.
    let backend_kind = match value.get("backend") {
        None | Some(Value::Null) => crate::backend::BackendKind::Scalar,
        Some(v) => {
            let name = v.as_str().ok_or("backend must be a string")?;
            BackendSel::kind_from_str(name).ok_or_else(|| format!("unknown backend {name:?}"))?
        }
    };
    let simd_radix_log2 = match value.get("simd_radix_log2") {
        None | Some(Value::Null) => 3,
        Some(v) => {
            let r = v.as_u64().ok_or("non-integer simd_radix_log2")? as u32;
            if !(2..=3).contains(&r) {
                return Err(format!("simd_radix_log2 {r} out of range"));
            }
            r
        }
    };
    Ok(WisdomEntry {
        key,
        tuning,
        workers: num("workers")? as usize,
        batch: num("batch")? as usize,
        backend: BackendSel {
            kind: backend_kind,
            simd_radix_log2,
        },
        median_ns: num("median_ns")?,
        seed_median_ns: num("seed_median_ns")?,
        cert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(n_log2: u32, version: Version) -> WisdomEntry {
        let cps = 1usize << (n_log2 - 6);
        let key = PlanKey::with_radix(1usize << n_log2, version, version.layout(), 6);
        let tuning = ScheduleTuning {
            pool_order: Some((0..cps).rev().collect()),
            last_early: None,
            transpose_block_log2: None,
        };
        let cert = Certificate::for_plan(&crate::planner::Plan::build_tuned(key, Some(&tuning)))
            .expect("sample tuning is valid");
        WisdomEntry {
            key,
            tuning,
            workers: 4,
            batch: 8,
            backend: BackendSel::SIMD,
            median_ns: 123_456,
            seed_median_ns: 234_567,
            cert: Some(cert),
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let mut wisdom = Wisdom::new();
        let mut guided = sample_entry(14, Version::FineGuided);
        guided.tuning.last_early = Some(1);
        wisdom.insert(guided);
        wisdom.insert(sample_entry(13, Version::Fine(SeedOrder::Random(99))));
        let text = wisdom.to_json().to_string_pretty();
        let back = Wisdom::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, wisdom);
    }

    #[test]
    fn versions_round_trip_through_strings() {
        for v in [
            Version::Coarse,
            Version::CoarseHash,
            Version::Fine(SeedOrder::Natural),
            Version::Fine(SeedOrder::Random(0xDEAD_BEEF)),
            Version::FineHash(SeedOrder::EvenOdd),
            Version::FineHash(SeedOrder::Reversed),
            Version::FineGuided,
        ] {
            assert_eq!(
                version_from_string(&version_to_string(v)).unwrap(),
                v,
                "{v:?}"
            );
        }
        assert!(version_from_string("fine:banana").is_err());
        assert!(version_from_string("medium").is_err());
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut wisdom = Wisdom::new();
        let mut entry = sample_entry(12, Version::FineGuided);
        wisdom.insert(entry.clone());
        entry.median_ns = 1;
        wisdom.insert(entry.clone());
        assert_eq!(wisdom.len(), 1);
        assert_eq!(wisdom.lookup(&entry.key).unwrap().median_ns, 1);
    }

    #[test]
    fn load_tolerates_missing_corrupt_and_foreign_files() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("missing.json");
        assert_eq!(Wisdom::load(&missing).1, WisdomStatus::Missing);

        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{ not json").unwrap();
        assert_eq!(Wisdom::load(&corrupt).1, WisdomStatus::Corrupt);

        // Truncated mid-document: parse fails, load degrades gracefully.
        let mut wisdom = Wisdom::new();
        wisdom.insert(sample_entry(12, Version::FineGuided));
        let full = wisdom.to_json().to_string_pretty();
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        assert_eq!(Wisdom::load(&truncated).1, WisdomStatus::Corrupt);

        let future = dir.join("future.json");
        std::fs::write(
            &future,
            "{\"format\": 999, \"fingerprint\": \"x\", \"entries\": []}",
        )
        .unwrap();
        assert_eq!(Wisdom::load(&future).1, WisdomStatus::FormatMismatch);

        let foreign = dir.join("foreign.json");
        let mut other = Wisdom::with_fingerprint("some-other-box-1t".to_string());
        other.insert(sample_entry(12, Version::FineGuided));
        other.save(&foreign).unwrap();
        let (loaded, status) = Wisdom::load(&foreign);
        assert_eq!(status, WisdomStatus::FingerprintMismatch);
        assert!(loaded.is_empty(), "foreign entries must be ignored");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_then_load_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.json");
        let mut wisdom = Wisdom::new();
        wisdom.insert(sample_entry(12, Version::FineGuided));
        wisdom.insert(sample_entry(15, Version::FineHash(SeedOrder::Natural)));
        wisdom.save(&path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert!(status.is_loaded());
        assert_eq!(loaded, wisdom);
        // Re-saving the loaded store reproduces the file byte for byte.
        loaded.save(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ill_fitting_tunings_load_as_invalid_not_panics() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        // Pool order of the wrong length for the plan: schema-valid JSON,
        // semantically invalid tuning — rejected wholesale at load, under
        // either certificate policy, without reaching plan construction.
        let text = format!(
            "{{\"format\": 4, \"fingerprint\": {:?}, \"entries\": [{{\
             \"n_log2\": 12, \"radix_log2\": 6, \"version\": \"fine-guided\", \
             \"layout\": \"linear\", \"pool_order\": [0, 1], \"last_early\": null, \
             \"workers\": 1, \"batch\": 1, \"median_ns\": 1, \"seed_median_ns\": 1}}]}}",
            machine_fingerprint()
        );
        std::fs::write(&path, text).unwrap();
        assert_eq!(Wisdom::load(&path).1, WisdomStatus::Invalid);
        let (loaded, status) = Wisdom::load_with(&path, CertPolicy::Trust);
        assert_eq!(status, WisdomStatus::Invalid);
        assert!(loaded.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncertified_entries_are_rejected_unless_trusted() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-nocert-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.json");
        let mut wisdom = Wisdom::new();
        let mut entry = sample_entry(12, Version::FineGuided);
        entry.cert = None;
        wisdom.insert(entry);
        wisdom.save(&path).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::Uncertified);
        assert!(loaded.is_empty());
        // The escape hatch accepts the same file.
        let (loaded, status) = Wisdom::load_with(&path, CertPolicy::Trust);
        assert_eq!(status, WisdomStatus::Loaded { entries: 1 });
        assert_eq!(loaded.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_format_2_files_degrade_to_uncertified_not_panics() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-v2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        // A faithful pre-backend (format 2) document: valid tuning, a real
        // certificate, no backend fields. It must never crash the loader;
        // under the strict policy it degrades wholesale.
        let entry = sample_entry(12, Version::FineGuided);
        let pool: Vec<String> = entry
            .tuning
            .pool_order
            .as_ref()
            .unwrap()
            .iter()
            .map(|i| i.to_string())
            .collect();
        let text = format!(
            "{{\"format\": 2, \"fingerprint\": {:?}, \"entries\": [{{\
             \"n_log2\": 12, \"radix_log2\": 6, \"version\": \"fine-guided\", \
             \"layout\": \"linear\", \"pool_order\": [{}], \"last_early\": null, \
             \"workers\": 4, \"batch\": 8, \"median_ns\": 123456, \
             \"seed_median_ns\": 234567, \"cert\": {}}}]}}",
            machine_fingerprint(),
            pool.join(", "),
            entry.cert.as_ref().unwrap().to_json().to_string_pretty(),
        );
        std::fs::write(&path, text).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::Uncertified);
        assert!(loaded.is_empty(), "legacy entries must not half-apply");
        // The escape hatch still adopts the file, pinned to scalar.
        let (loaded, status) = Wisdom::load_with(&path, CertPolicy::Trust);
        assert_eq!(status, WisdomStatus::Loaded { entries: 1 });
        assert_eq!(loaded.entries()[0].backend, BackendSel::SCALAR);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_entries_round_trip_and_load() {
        use crate::workload::TransformKind;
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.json");
        let mut wisdom = Wisdom::new();
        for kind in [
            TransformKind::R2C,
            TransformKind::C2R,
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 7,
            },
        ] {
            let key =
                PlanKey::with_kind(kind, 1 << 12, Version::FineGuided, TwiddleLayout::Linear, 6);
            let tuning = ScheduleTuning {
                pool_order: None,
                last_early: None,
                transpose_block_log2: matches!(kind, TransformKind::C2C2D { .. }).then_some(4),
            };
            let cert =
                Certificate::for_plan(&crate::planner::Plan::build_tuned(key, Some(&tuning)))
                    .unwrap();
            wisdom.insert(WisdomEntry {
                key,
                tuning,
                workers: 2,
                batch: 4,
                backend: BackendSel::SCALAR,
                median_ns: 111,
                seed_median_ns: 222,
                cert: Some(cert),
            });
        }
        wisdom.save(&path).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::Loaded { entries: 3 });
        assert_eq!(loaded, wisdom);
        let key2d = PlanKey::with_kind(
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 7,
            },
            1 << 12,
            Version::FineGuided,
            TwiddleLayout::Linear,
            6,
        );
        assert_eq!(
            loaded.lookup(&key2d).unwrap().tuning.transpose_block_log2,
            Some(4)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_format_3_files_degrade_to_uncertified_not_panics() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-v3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy3.json");
        // A faithful pre-kind (format 3) document: backend fields present,
        // no kind or transpose fields. Decodes as a C2C entry; under the
        // strict policy the whole file degrades (its certificates were
        // issued against the previous workload revision).
        let entry = sample_entry(12, Version::FineGuided);
        let pool: Vec<String> = entry
            .tuning
            .pool_order
            .as_ref()
            .unwrap()
            .iter()
            .map(|i| i.to_string())
            .collect();
        let text = format!(
            "{{\"format\": 3, \"fingerprint\": {:?}, \"entries\": [{{\
             \"n_log2\": 12, \"radix_log2\": 6, \"version\": \"fine-guided\", \
             \"layout\": \"linear\", \"pool_order\": [{}], \"last_early\": null, \
             \"workers\": 4, \"batch\": 8, \"backend\": \"simd\", \
             \"simd_radix_log2\": 3, \"median_ns\": 123456, \
             \"seed_median_ns\": 234567, \"cert\": {}}}]}}",
            machine_fingerprint(),
            pool.join(", "),
            entry.cert.as_ref().unwrap().to_json().to_string_pretty(),
        );
        std::fs::write(&path, text).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::Uncertified);
        assert!(loaded.is_empty(), "legacy entries must not half-apply");
        // The escape hatch adopts it; the entry decodes as plain complex.
        let (loaded, status) = Wisdom::load_with(&path, CertPolicy::Trust);
        assert_eq!(status, WisdomStatus::Loaded { entries: 1 });
        assert!(loaded.entries()[0].key.kind.is_c2c());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_certificates_are_rejected_at_load() {
        let dir = std::env::temp_dir().join(format!("fgfft-wisdom-tamper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.json");
        let mut wisdom = Wisdom::new();
        let mut entry = sample_entry(12, Version::FineGuided);
        // The certificate was issued for a different tuning than the entry
        // carries: the schedule digest no longer matches.
        entry.tuning.pool_order = Some((0..64).collect());
        wisdom.insert(entry);
        wisdom.save(&path).unwrap();
        let (loaded, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::CertificateMismatch);
        assert!(loaded.is_empty());
        // Trust mode skips certificate verification (tuning is still valid).
        let (_, status) = Wisdom::load_with(&path, CertPolicy::Trust);
        assert_eq!(status, WisdomStatus::Loaded { entries: 1 });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
