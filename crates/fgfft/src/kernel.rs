//! The codelet kernel: one `2^p`-point FFT work unit.
//!
//! A codelet gathers its `P` elements from the (bit-reversal-permuted) data
//! array into a local buffer — on C64 this is the per-TU scratchpad, here a
//! stack array — applies `q` butterfly levels, and scatters the results back
//! in place. Twiddle factors are looked up by *logical* index; the table's
//! layout (linear vs hashed) decides which memory location that touches,
//! which matters to the machine but not to the arithmetic.

use crate::complex::Complex64;
use crate::plan::{FftPlan, MAX_RADIX_LOG2};
use crate::twiddle::TwiddleTable;
use crate::workload::low_mask;

// The index-algebra tables the kernel's arithmetic is replayed from live in
// the workload layer (the single authority); re-exported here because they
// describe what this kernel does.
pub use crate::workload::{for_each_twiddle_index, twiddle_loads};

/// Local buffer size: the largest supported codelet.
const BUF: usize = 1 << MAX_RADIX_LOG2;

/// One radix-2 butterfly: `(a, b) ← (a + w·b, a − w·b)`.
#[inline(always)]
pub fn butterfly(a: Complex64, b: Complex64, w: Complex64) -> (Complex64, Complex64) {
    let t = w * b;
    (a + t, a - t)
}

/// Execute codelet `(stage, idx)` of `plan` on `data` in place.
///
/// `data` must be the full `plan.n()`-element array *after* bit-reversal
/// permutation, with stages `0..stage` already applied to this codelet's
/// elements.
pub fn execute_codelet(
    plan: &FftPlan,
    twiddles: &TwiddleTable,
    data: &mut [Complex64],
    stage: usize,
    idx: usize,
) {
    debug_assert_eq!(data.len(), plan.n());
    let mut buf = [Complex64::ZERO; BUF];
    // Gather.
    plan.for_each_element(stage, idx, |slot, e| buf[slot] = data[e]);
    compute_in_buffer(plan, twiddles, &mut buf, stage, idx);
    // Scatter.
    plan.for_each_element(stage, idx, |slot, e| data[e] = buf[slot]);
}

/// The arithmetic core, operating on the gathered local buffer. Exposed so
/// the shared-memory executors can run it on raw views; see
/// [`crate::exec::shared`].
pub(crate) fn compute_in_buffer(
    plan: &FftPlan,
    twiddles: &TwiddleTable,
    buf: &mut [Complex64; BUF],
    stage: usize,
    idx: usize,
) {
    let p = plan.radix_log2();
    let q = plan.levels(stage);
    let pj = p * stage as u32;
    let n_log2 = plan.n_log2();
    let groups = 1usize << (p - q);
    let group_size = 1usize << q;
    let first_group = idx << (p - q);

    for ll in 0..q {
        let l = pj + ll;
        let shift = n_log2 - l - 1;
        let ll_mask = (1usize << ll) - 1;
        for g_rel in 0..groups {
            let g = first_group + g_rel;
            let g_low = g & low_mask(pj);
            let base = g_rel * group_size;
            for b in 0..group_size / 2 {
                // Local butterfly pattern at level ll within the group.
                let x_lo = ((b >> ll) << (ll + 1)) | (b & ll_mask);
                let lo = base + x_lo;
                let hi = lo + (1 << ll);
                // Global twiddle offset o = (x_lo mod 2^ll)·2^{p·j} + g_low;
                // twiddle index = o · 2^{n−l−1}.
                let o = ((b & ll_mask) << pj) + g_low;
                let w = twiddles.get(o << shift);
                let (a, c) = butterfly(buf[lo], buf[hi], w);
                buf[lo] = a;
                buf[hi] = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrev::bit_reverse_permute;
    use crate::complex::rms_error;
    use crate::reference::naive_dft;
    use crate::twiddle::TwiddleLayout;

    /// Run the whole FFT single-threaded, stage by stage, codelet by
    /// codelet. This is the semantic ground truth for every executor.
    pub(crate) fn serial_codelet_fft(
        data: &mut [Complex64],
        radix_log2: u32,
        layout: TwiddleLayout,
    ) {
        let n_log2 = data.len().trailing_zeros();
        let plan = FftPlan::new(n_log2, radix_log2);
        let tw = TwiddleTable::new(n_log2, layout);
        bit_reverse_permute(data);
        for stage in 0..plan.stages() {
            for idx in 0..plan.codelets_per_stage() {
                execute_codelet(&plan, &tw, data, stage, idx);
            }
        }
    }

    fn impulse_response(n: usize) {
        // FFT of a unit impulse is all-ones.
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        serial_codelet_fft(&mut data, 6, TwiddleLayout::Linear);
        for (i, &v) in data.iter().enumerate() {
            assert!(v.dist(Complex64::ONE) < 1e-12, "bin {i} = {v}");
        }
    }

    #[test]
    fn impulse_various_sizes() {
        for n_log2 in [1u32, 2, 3, 6, 7, 12, 13] {
            impulse_response(1 << n_log2);
        }
    }

    #[test]
    fn matches_naive_dft_all_radices() {
        for n_log2 in [4u32, 7, 9] {
            let n = 1usize << n_log2;
            let input: Vec<Complex64> = (0..n)
                .map(|i| {
                    Complex64::new(
                        ((i * 37 + 11) % 101) as f64 / 50.0 - 1.0,
                        ((i * 73 + 29) % 97) as f64 / 48.0 - 1.0,
                    )
                })
                .collect();
            let expect = naive_dft(&input);
            for radix_log2 in 1..=MAX_RADIX_LOG2 {
                let mut data = input.clone();
                serial_codelet_fft(&mut data, radix_log2, TwiddleLayout::Linear);
                let err = rms_error(&data, &expect);
                assert!(err < 1e-9, "n=2^{n_log2} radix=2^{radix_log2}: rms {err}");
            }
        }
    }

    #[test]
    fn hashed_layouts_do_not_change_results() {
        let n = 1usize << 9;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut lin = input.clone();
        serial_codelet_fft(&mut lin, 6, TwiddleLayout::Linear);
        for layout in [
            TwiddleLayout::BitReversedHash,
            TwiddleLayout::MultiplicativeHash,
        ] {
            let mut h = input.clone();
            serial_codelet_fft(&mut h, 6, layout);
            assert!(rms_error(&h, &lin) < 1e-12, "layout {layout:?}");
        }
    }

    #[test]
    fn butterfly_identity() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        let (s, d) = butterfly(a, b, Complex64::ONE);
        assert!(s.dist(a + b) < 1e-15);
        assert!(d.dist(a - b) < 1e-15);
    }

    #[test]
    fn tabled_replay_is_bitwise_identical_to_compute_in_buffer() {
        use crate::workload::{append_twiddle_run, butterfly_pairs};
        for (n_log2, p_log2) in [(13u32, 6u32), (12, 6), (9, 3), (3, 2)] {
            let plan = FftPlan::new(n_log2, p_log2);
            for layout in [TwiddleLayout::Linear, TwiddleLayout::BitReversedHash] {
                let tw = TwiddleTable::new(n_log2, layout);
                for stage in 0..plan.stages() {
                    let pairs = butterfly_pairs(&plan, stage);
                    for idx in [0, plan.codelets_per_stage() - 1] {
                        let mut run = Vec::new();
                        append_twiddle_run(&plan, &tw, stage, idx, &mut run);
                        assert_eq!(run.len(), pairs.len(), "one twiddle per butterfly");
                        let mut direct = [Complex64::ZERO; BUF];
                        for (s, v) in direct.iter_mut().enumerate() {
                            *v = Complex64::new(s as f64 * 0.3 - 1.0, (s as f64 * 0.7).cos());
                        }
                        let mut replay = direct;
                        compute_in_buffer(&plan, &tw, &mut direct, stage, idx);
                        for (&(lo, hi), &w) in pairs.iter().zip(&run) {
                            let (a, c) = butterfly(replay[lo as usize], replay[hi as usize], w);
                            replay[lo as usize] = a;
                            replay[hi as usize] = c;
                        }
                        assert_eq!(
                            direct.to_vec(),
                            replay.to_vec(),
                            "stage {stage} idx {idx} {layout:?}"
                        );
                    }
                }
            }
        }
    }
}
