//! Twiddle-factor tables and their memory layouts.
//!
//! An `N`-point radix-2 FFT needs the `N/2` factors `W[t] = e^{-2πit/N}`.
//! At level `l`, butterfly offset `o` uses `W[o · 2^(log₂N − l − 1)]` — an
//! access stride that is a large power of two in early levels. Stored
//! **linearly**, four 16-byte factors share one 64-byte DRAM stripe, so
//! every early-level access lands on the bank of element 0: this is the
//! paper's bank-0 hotspot. Stored **bit-reversal hashed** (Sec. IV-B),
//! element `t` lives at position `BR(t)`, scattering the strided stream
//! uniformly over the banks at the price of computing `BR` per access.

use crate::bitrev::bit_reverse;
use crate::complex::Complex64;
use std::f64::consts::PI;

/// How twiddle factors are placed in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwiddleLayout {
    /// `W[t]` stored at index `t`.
    Linear,
    /// `W[t]` stored at index `bit_reverse(t, log₂(N/2))` — the paper's
    /// software hash, chosen because C64 has a bit-reverse instruction.
    BitReversedHash,
    /// `W[t]` stored at `(t * MULTIPLIER) mod (N/2)` for an odd multiplier —
    /// an alternative cheap hash used by the hash-function ablation.
    MultiplicativeHash,
}

/// Odd multiplier for [`TwiddleLayout::MultiplicativeHash`] (Knuth's 2^63·φ
/// truncated to keep products in 64 bits for any table size used here).
const MULT_HASH: usize = 0x9E37_79B9_7F4A_7C15 & ((1 << 62) - 1) | 1;

/// A precomputed twiddle-factor table for an `N`-point FFT.
#[derive(Debug, Clone)]
pub struct TwiddleTable {
    n_log2: u32,
    layout: TwiddleLayout,
    values: Vec<Complex64>,
}

impl TwiddleTable {
    /// Precompute the table for a `2^n_log2`-point transform.
    pub fn new(n_log2: u32, layout: TwiddleLayout) -> Self {
        assert!(n_log2 >= 1, "need at least a 2-point transform");
        let half = 1usize << (n_log2 - 1);
        let mut values = vec![Complex64::ZERO; half];
        let step = -2.0 * PI / (1u64 << n_log2) as f64;
        for t in 0..half {
            let slot = Self::map_index(t, n_log2, layout);
            values[slot] = Complex64::expi(step * t as f64);
        }
        Self {
            n_log2,
            layout,
            values,
        }
    }

    /// Where logical index `t` is stored.
    #[inline]
    pub fn map_index(t: usize, n_log2: u32, layout: TwiddleLayout) -> usize {
        let half_bits = n_log2 - 1;
        match layout {
            TwiddleLayout::Linear => t,
            TwiddleLayout::BitReversedHash => bit_reverse(t, half_bits),
            TwiddleLayout::MultiplicativeHash => t.wrapping_mul(MULT_HASH) & ((1 << half_bits) - 1),
        }
    }

    /// Storage slot of logical twiddle `t` in *this* table.
    #[inline]
    pub fn slot(&self, t: usize) -> usize {
        Self::map_index(t, self.n_log2, self.layout)
    }

    /// The factor `W[t] = e^{-2πit/N}`.
    #[inline]
    pub fn get(&self, t: usize) -> Complex64 {
        self.values[self.slot(t)]
    }

    /// Transform size exponent.
    pub fn n_log2(&self) -> u32 {
        self.n_log2
    }

    /// Number of stored factors (`N/2`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the degenerate 2-point table of length 1 — never empty in
    /// practice.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The layout in force.
    pub fn layout(&self) -> TwiddleLayout {
        self.layout
    }

    /// Bytes the table occupies (for address-space planning).
    pub fn bytes(&self) -> u64 {
        (self.values.len() * std::mem::size_of::<Complex64>()) as u64
    }

    /// The stored factors in slot order (layout-permuted). The certificate
    /// layer digests these directly: they are the independent data the
    /// per-codelet twiddle runs are expanded from.
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_table_values() {
        let t = TwiddleTable::new(3, TwiddleLayout::Linear); // N=8, 4 factors
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(t.get(0).dist(Complex64::ONE) < 1e-15);
        // W_8^2 = e^{-iπ/2} = -i
        assert!(t.get(2).dist(Complex64::new(0.0, -1.0)) < 1e-15);
    }

    #[test]
    fn all_layouts_agree_on_logical_values() {
        for layout in [
            TwiddleLayout::Linear,
            TwiddleLayout::BitReversedHash,
            TwiddleLayout::MultiplicativeHash,
        ] {
            let t = TwiddleTable::new(8, layout);
            let lin = TwiddleTable::new(8, TwiddleLayout::Linear);
            for k in 0..t.len() {
                assert!(
                    t.get(k).dist(lin.get(k)) < 1e-15,
                    "layout {layout:?} index {k}"
                );
            }
        }
    }

    #[test]
    fn hashed_layouts_are_permutations() {
        for layout in [
            TwiddleLayout::BitReversedHash,
            TwiddleLayout::MultiplicativeHash,
        ] {
            let n_log2 = 10;
            let half = 1usize << (n_log2 - 1);
            let mut seen = vec![false; half];
            for t in 0..half {
                let s = TwiddleTable::map_index(t, n_log2, layout);
                assert!(s < half);
                assert!(!seen[s], "layout {layout:?} collides at {t}");
                seen[s] = true;
            }
        }
    }

    /// Bank of a table slot under the C64 layout: 16-byte elements, 64-byte
    /// stripes, 4 banks.
    fn bank_of_slot(s: usize) -> usize {
        (s * 16 / 64) % 4
    }

    #[test]
    fn bitrev_hash_scatters_strided_stream() {
        // A mid-level access set: indices o * 2^(n-1-l) for o in 0..2^l.
        // Linear layout: every index is a multiple of 16 elements → always
        // bank 0. Bit-reversed layout: the stream becomes contiguous slots,
        // which round-robin across all four banks.
        let n_log2 = 16;
        let l = 8;
        let stride = 1usize << (n_log2 - 1 - l);
        let mut linear = vec![0usize; 4];
        let mut hashed = vec![0usize; 4];
        for o in 0..1usize << l {
            linear[bank_of_slot(TwiddleTable::map_index(
                o * stride,
                n_log2,
                TwiddleLayout::Linear,
            ))] += 1;
            hashed[bank_of_slot(TwiddleTable::map_index(
                o * stride,
                n_log2,
                TwiddleLayout::BitReversedHash,
            ))] += 1;
        }
        assert_eq!(linear, vec![256, 0, 0, 0], "linear: all on bank 0");
        assert_eq!(hashed, vec![64, 64, 64, 64], "hashed: uniform");
    }

    #[test]
    fn full_level_access_set_is_balanced_under_hash() {
        // All twiddles of level l map, under bit reversal, to the contiguous
        // slots 0..2^l (in permuted order), which stripe evenly.
        let n_log2 = 14;
        let l = 5;
        let stride = 1usize << (n_log2 - 1 - l);
        let mut h = vec![0usize; 4];
        for o in 0..1usize << l {
            let s = TwiddleTable::map_index(o * stride, n_log2, TwiddleLayout::BitReversedHash);
            assert!(s < 1 << l, "bit reversal keeps the stream contiguous");
            h[bank_of_slot(s)] += 1;
        }
        assert_eq!(h, vec![8, 8, 8, 8]);
    }

    #[test]
    fn table_bytes() {
        let t = TwiddleTable::new(10, TwiddleLayout::Linear);
        assert_eq!(t.bytes(), 512 * 16);
    }

    #[test]
    #[should_panic(expected = "at least a 2-point")]
    fn zero_size_rejected() {
        TwiddleTable::new(0, TwiddleLayout::Linear);
    }
}
