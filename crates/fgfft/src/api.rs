//! High-level user-facing API: forward/inverse transforms, spectra, and
//! FFT-based convolution, built on the codelet executors.

use crate::complex::Complex64;
use crate::exec::{ExecConfig, ExecStats, Version};
use crate::planner::{PlanKey, Planner};
use codelet::runtime::Runtime;
use std::sync::Arc;

/// A configured FFT engine. Cheap to construct and reusable across calls of
/// the same or different sizes.
///
/// Repeated transforms of one size reuse a cached [`crate::Plan`] — twiddle
/// table, bit-reversal swaps, materialized schedule — through a shared
/// [`Planner`]: only the first call of each `(size, version, layout)` pays
/// the derivation. By default every engine shares the process-wide
/// [`Planner::shared`] cache; [`Fft::with_planner`] isolates one.
///
/// ```
/// use fgfft::{Fft, Complex64};
///
/// let fft = Fft::new();
/// let mut data = vec![Complex64::ZERO; 1024];
/// data[1] = Complex64::ONE;
/// fft.forward(&mut data);
/// // A one-sample delay has flat magnitude spectrum.
/// assert!(data.iter().all(|v| (v.abs() - 1.0).abs() < 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    version: Version,
    config: ExecConfig,
    planner: Arc<Planner>,
}

impl Default for Fft {
    fn default() -> Self {
        Self::new()
    }
}

impl Fft {
    /// Engine with the library defaults: guided fine-grain scheduling,
    /// 64-point codelets, all available cores.
    pub fn new() -> Self {
        Self {
            version: Version::FineGuided,
            config: ExecConfig::default(),
            planner: Planner::shared(),
        }
    }

    /// Select an algorithm version.
    pub fn with_version(mut self, version: Version) -> Self {
        self.version = version;
        self
    }

    /// Select a worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Select the codelet radix (log2 of points per codelet, 1..=7).
    pub fn with_radix_log2(mut self, radix_log2: u32) -> Self {
        self.config.radix_log2 = radix_log2;
        self
    }

    /// Use a specific plan cache instead of the process-wide shared one —
    /// for isolation (tests, metrics) or bounded-lifetime caches.
    pub fn with_planner(mut self, planner: Arc<Planner>) -> Self {
        self.planner = planner;
        self
    }

    /// The algorithm version in force.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The plan cache this engine resolves against.
    pub fn planner(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// Resolve the plan for `kind` at logical size `n` against this
    /// engine's planner — the veneer hook `rfft`/`fft2d` route through.
    pub(crate) fn plan_kind(
        &self,
        kind: crate::workload::TransformKind,
        n: usize,
    ) -> std::sync::Arc<crate::planner::Plan> {
        self.planner.plan_key(PlanKey::with_kind(
            kind,
            n,
            self.version,
            self.version.layout(),
            self.config.radix_log2,
        ))
    }

    /// A runtime sized to this engine's worker count.
    pub(crate) fn runtime(&self) -> Runtime {
        Runtime::with_workers(self.config.workers)
    }

    /// In-place forward transform. Length must be a power of two ≥ 2.
    pub fn forward(&self, data: &mut [Complex64]) -> ExecStats {
        let key = PlanKey::with_radix(
            data.len(),
            self.version,
            self.version.layout(),
            self.config.radix_log2,
        );
        self.planner
            .plan_key(key)
            .execute(data, &Runtime::with_workers(self.config.workers))
    }

    /// In-place inverse transform (normalized by 1/N), via the conjugation
    /// identity `IFFT(x) = conj(FFT(conj(x))) / N`.
    pub fn inverse(&self, data: &mut [Complex64]) -> ExecStats {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        let stats = self.forward(data);
        let scale = 1.0 / data.len() as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
        stats
    }
}

/// One-call forward FFT with default settings.
pub fn forward(data: &mut [Complex64]) -> ExecStats {
    Fft::new().forward(data)
}

/// One-call inverse FFT with default settings.
pub fn inverse(data: &mut [Complex64]) -> ExecStats {
    Fft::new().inverse(data)
}

/// Power spectrum of a real signal: `|FFT(x)|²` for bins `0..=N/2` after
/// zero-padding `x` to the next power of two. Returns (padded length,
/// per-bin power).
pub fn power_spectrum(signal: &[f64]) -> (usize, Vec<f64>) {
    assert!(!signal.is_empty(), "empty signal");
    let n = signal.len().next_power_of_two().max(2);
    let mut data: Vec<Complex64> = signal
        .iter()
        .map(|&x| Complex64::new(x, 0.0))
        .chain(std::iter::repeat(Complex64::ZERO))
        .take(n)
        .collect();
    forward(&mut data);
    let spectrum = data[..=n / 2].iter().map(|v| v.norm_sqr()).collect();
    (n, spectrum)
}

/// Linear convolution of two complex sequences via the convolution theorem.
/// Output length is `a.len() + b.len() − 1`.
pub fn convolve(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    assert!(!a.is_empty() && !b.is_empty(), "empty operand");
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two().max(2);
    let engine = Fft::new();
    let mut fa: Vec<Complex64> = a
        .iter()
        .copied()
        .chain(std::iter::repeat(Complex64::ZERO))
        .take(n)
        .collect();
    let mut fb: Vec<Complex64> = b
        .iter()
        .copied()
        .chain(std::iter::repeat(Complex64::ZERO))
        .take(n)
        .collect();
    engine.forward(&mut fa);
    engine.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    engine.inverse(&mut fa);
    fa.truncate(out_len);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::rms_error;
    use crate::exec::SeedOrder;
    use crate::reference::{naive_dft, naive_idft};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.19).sin(), (i as f64 * 0.41).cos()))
            .collect()
    }

    #[test]
    fn forward_matches_dft() {
        let x = signal(256);
        let expect = naive_dft(&x);
        let mut data = x;
        forward(&mut data);
        assert!(rms_error(&data, &expect) < 1e-10);
    }

    #[test]
    fn inverse_matches_idft() {
        let x = signal(128);
        let expect = naive_idft(&x);
        let mut data = x;
        inverse(&mut data);
        assert!(rms_error(&data, &expect) < 1e-10);
    }

    #[test]
    fn roundtrip_is_identity() {
        let x = signal(1 << 12);
        let engine = Fft::new().with_workers(4);
        let mut data = x.clone();
        engine.forward(&mut data);
        engine.inverse(&mut data);
        assert!(rms_error(&data, &x) < 1e-12);
    }

    #[test]
    fn builder_options_apply() {
        let engine = Fft::new()
            .with_version(Version::Fine(SeedOrder::Reversed))
            .with_workers(2)
            .with_radix_log2(3);
        assert_eq!(engine.version(), Version::Fine(SeedOrder::Reversed));
        let x = signal(64);
        let expect = naive_dft(&x);
        let mut data = x;
        engine.forward(&mut data);
        assert!(rms_error(&data, &expect) < 1e-10);
    }

    #[test]
    fn repeated_forwards_reuse_one_plan() {
        let planner = Arc::new(Planner::new());
        let engine = Fft::new()
            .with_workers(2)
            .with_planner(Arc::clone(&planner));
        let mut a = signal(1 << 9);
        let mut b = a.clone();
        engine.forward(&mut a);
        engine.forward(&mut b);
        assert_eq!(a, b, "cached second call must be bit-identical");
        let stats = planner.stats();
        assert_eq!(stats.built, 1, "twiddles derived once, not per call");
        assert_eq!(stats.hits, 1);
        // A different size is a different plan.
        let mut c = signal(1 << 10);
        engine.forward(&mut c);
        assert_eq!(planner.stats().built, 2);
    }

    #[test]
    fn power_spectrum_finds_a_tone() {
        use std::f64::consts::PI;
        let n = 512;
        let freq = 37;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * freq as f64 * i as f64 / n as f64).sin())
            .collect();
        let (padded, spec) = power_spectrum(&signal);
        assert_eq!(padded, 512);
        assert_eq!(spec.len(), 257);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, freq);
    }

    #[test]
    fn power_spectrum_pads_to_power_of_two() {
        let (padded, spec) = power_spectrum(&[1.0; 300]);
        assert_eq!(padded, 512);
        assert_eq!(spec.len(), 257);
    }

    #[test]
    fn convolve_matches_direct() {
        let a = signal(37);
        let b = signal(23);
        let direct = {
            let mut out = vec![Complex64::ZERO; 59];
            for (i, &x) in a.iter().enumerate() {
                for (j, &y) in b.iter().enumerate() {
                    out[i + j] += x * y;
                }
            }
            out
        };
        let fast = convolve(&a, &b);
        assert_eq!(fast.len(), 59);
        assert!(rms_error(&fast, &direct) < 1e-10);
    }

    #[test]
    fn convolve_with_delta_is_identity() {
        let a = signal(40);
        let delta = vec![Complex64::ONE];
        let out = convolve(&a, &delta);
        assert!(rms_error(&out, &a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn power_spectrum_rejects_empty() {
        power_spectrum(&[]);
    }
}
