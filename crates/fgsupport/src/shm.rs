//! Shared-memory and file-descriptor plumbing for cross-process serving.
//!
//! The wire layer (`fgwire`) needs four OS facilities that `std` does not
//! expose: anonymous shared memory (`memfd_create` + `mmap(MAP_SHARED)`),
//! eventfd doorbells, `poll(2)` multiplexing, and SCM_RIGHTS fd passing
//! over Unix-domain sockets. The workspace builds in hermetic environments
//! with no crates.io access, so — in the same spirit as the rest of
//! `fgsupport` — this module declares the handful of libc entry points it
//! needs directly instead of pulling in the `libc` crate. Everything here
//! is Linux-only (LP64 layouts for `msghdr`/`cmsghdr`/`pollfd`), which is
//! what the workspace targets.
//!
//! Pieces:
//!
//! * [`MemorySegment`] — a file-backed `MAP_SHARED` mapping. Created from
//!   a fresh `memfd` (falling back to an unlinked temp file on kernels or
//!   architectures without it) or from a received fd, so two processes
//!   mapping the same fd see the same physical pages.
//! * [`EventFd`] — a futex-free doorbell: one side [`EventFd::signal`]s,
//!   the other [`EventFd::wait`]s (level-triggered via `poll`).
//! * [`poll`] over [`PollFd`] — readiness multiplexing across doorbells
//!   and control sockets (including `POLLHUP` death detection).
//! * [`send_with_fds`] / [`recv_with_fds`] — SCM_RIGHTS ancillary
//!   payloads on a `UnixStream`, used by the control channel to hand the
//!   segment and doorbell fds to the server.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_void = std::ffi::c_void;
#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_long = i64;

#[repr(C)]
struct IoVec {
    base: *mut c_void,
    len: usize,
}

/// Linux LP64 `struct msghdr` (x86_64 and aarch64 share this layout; the
/// `repr(C)` padding after `name_len` and `flags` matches glibc/musl).
#[repr(C)]
struct MsgHdr {
    name: *mut c_void,
    name_len: u32,
    iov: *mut IoVec,
    iov_len: usize,
    control: *mut c_void,
    control_len: usize,
    flags: c_int,
}

/// One entry for [`poll`]: mirrors `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which is handy for fixed-shape sets).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`], ...).
    pub events: i16,
    /// Returned events ([`POLLIN`] | [`POLLHUP`] | [`POLLERR`] | ...).
    pub revents: i16,
}

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Error condition (always checked, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up — the other process closed its end (or died).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open.
pub const POLLNVAL: i16 = 0x020;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const MFD_CLOEXEC: u32 = 1;
const SOL_SOCKET: c_int = 1;
const SCM_RIGHTS: c_int = 1;
const MSG_CMSG_CLOEXEC: c_int = 0x4000_0000;
const MSG_NOSIGNAL: c_int = 0x4000;
const EINTR: i32 = 4;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    #[link_name = "poll"]
    fn c_poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn sendmsg(fd: c_int, msg: *const MsgHdr, flags: c_int) -> isize;
    fn recvmsg(fd: c_int, msg: *mut MsgHdr, flags: c_int) -> isize;
    fn syscall(num: c_long, ...) -> c_long;
}

/// `memfd_create(2)` syscall number for the architectures the workspace
/// builds on; other targets fall back to the temp-file path.
#[cfg(target_arch = "x86_64")]
const SYS_MEMFD_CREATE: c_long = 319;
#[cfg(target_arch = "aarch64")]
const SYS_MEMFD_CREATE: c_long = 279;

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// Try `memfd_create`; `None` when the syscall is unavailable here.
fn memfd_create_fd() -> Option<OwnedFd> {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    {
        let name = b"fgwire-segment\0";
        // SAFETY: `name` is a valid NUL-terminated string and the flag
        // word is a plain bitmask; memfd_create creates a new fd or
        // returns -1.
        let fd = unsafe { syscall(SYS_MEMFD_CREATE, name.as_ptr(), MFD_CLOEXEC) };
        if fd >= 0 {
            // SAFETY: a fresh, owned descriptor straight from the kernel.
            return Some(unsafe { OwnedFd::from_raw_fd(fd as RawFd) });
        }
        None
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// Unlinked temp file fallback when `memfd_create` is unavailable: the
/// file is removed from the filesystem immediately, so — like a memfd —
/// the pages live exactly as long as the fds referencing them.
fn tmpfile_fd() -> io::Result<OwnedFd> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir();
    for _ in 0..64 {
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("fgwire-seg-{}-{unique}.tmp", std::process::id()));
        match std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => {
                let _ = std::fs::remove_file(&path);
                return Ok(OwnedFd::from(file));
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other("could not create a unique temp file"))
}

/// A shared, file-backed memory mapping.
///
/// Two processes that map the same fd (one created it, the other received
/// it over SCM_RIGHTS) see the same physical pages: writes on one side are
/// reads on the other, with ordering governed entirely by the atomics the
/// caller places *inside* the segment. The mapping is valid for the life
/// of this value regardless of what the peer does — a peer crashing or
/// unmapping never invalidates our pages.
#[derive(Debug)]
pub struct MemorySegment {
    ptr: *mut u8,
    len: usize,
    file: File,
}

// SAFETY: the mapping is plain memory owned by this value; all concurrent
// access goes through raw pointers/atomics whose safety the *user* of the
// segment reasons about (the segment itself hands out no references).
unsafe impl Send for MemorySegment {}
// SAFETY: see above — `&MemorySegment` only exposes the base pointer and
// metadata, never data references.
unsafe impl Sync for MemorySegment {}

impl MemorySegment {
    /// Create a fresh anonymous segment of `len` bytes (memfd, or an
    /// unlinked temp file where memfd is unavailable), zero-filled.
    pub fn create(len: usize) -> io::Result<Self> {
        let fd = match memfd_create_fd() {
            Some(fd) => fd,
            None => tmpfile_fd()?,
        };
        let file = File::from(fd);
        file.set_len(len as u64)?;
        Self::map(file, len)
    }

    /// Map an fd received from a peer. The fd's size must be at least
    /// `len` bytes — mapping pages past EOF would turn peer truncation
    /// into `SIGBUS`, so a short file is rejected here instead.
    pub fn from_fd(fd: OwnedFd, len: usize) -> io::Result<Self> {
        let file = File::from(fd);
        let actual = file.metadata()?.len();
        if actual < len as u64 {
            return Err(io::Error::other(format!(
                "segment fd holds {actual} bytes, need {len}"
            )));
        }
        Self::map(file, len)
    }

    fn map(file: File, len: usize) -> io::Result<Self> {
        if len == 0 {
            return Err(io::Error::other("zero-length segment"));
        }
        // SAFETY: fd is a valid open file of at least `len` bytes; a
        // MAP_SHARED read/write mapping of it has no alignment or
        // lifetime preconditions beyond those.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(last_err());
        }
        Ok(Self {
            ptr: ptr as *mut u8,
            len,
            file,
        })
    }

    /// Base address of the mapping.
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true: construction rejects 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing fd, for sending to a peer via [`send_with_fds`].
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

impl Drop for MemorySegment {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are unmapped
        // exactly once; the File closes the fd afterwards.
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
    }
}

/// A futex-free park/unpark doorbell over `eventfd(2)`.
///
/// Non-blocking by construction: [`EventFd::signal`] never blocks (the
/// counter saturates), [`EventFd::drain`] never blocks (empty reads return
/// immediately), and waiting happens through [`poll`] / [`EventFd::wait`]
/// with a timeout — so a dead peer can never wedge a waiter forever.
#[derive(Debug)]
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// A fresh doorbell (close-on-exec, non-blocking).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall; returns a new fd or -1.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_err());
        }
        // SAFETY: a fresh, owned descriptor.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(Self { file })
    }

    /// Adopt a doorbell fd received from a peer.
    pub fn from_fd(fd: OwnedFd) -> Self {
        Self {
            file: File::from(fd),
        }
    }

    /// The raw fd, for [`poll`] sets and [`send_with_fds`].
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Ring the bell: add 1 to the counter, waking any poller.
    pub fn signal(&self) {
        let one = 1u64.to_ne_bytes();
        // A full (saturated) counter returns EAGAIN, which is fine — the
        // peer is already as woken as it can get.
        let _ = (&self.file).write(&one);
    }

    /// Clear the counter so the next [`poll`] blocks until a new signal.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }

    /// Block up to `timeout` for a signal; returns whether one arrived.
    /// The counter is drained on success (level-triggered → edge).
    pub fn wait(&self, timeout: Duration) -> io::Result<bool> {
        let mut fds = [PollFd {
            fd: self.raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll(&mut fds, Some(timeout))?;
        if n > 0 && fds[0].revents & POLLIN != 0 {
            self.drain();
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

/// `poll(2)` over a set of fds. Returns the number of ready entries;
/// `timeout == None` blocks indefinitely. `EINTR` retries internally.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
    };
    loop {
        // SAFETY: `fds` is a valid slice of pollfd-layout entries for the
        // duration of the call.
        let n = unsafe { c_poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = last_err();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// Maximum fds a single [`send_with_fds`] / [`recv_with_fds`] carries.
pub const MAX_FDS: usize = 4;

const CMSG_HDR: usize = std::mem::size_of::<usize>() + 2 * std::mem::size_of::<c_int>();

/// Ancillary buffer: header + `MAX_FDS` ints, aligned like `cmsghdr`.
#[repr(C, align(8))]
struct CmsgBuf {
    bytes: [u8; CMSG_HDR + MAX_FDS * std::mem::size_of::<c_int>()],
}

/// Send `bytes` over `stream`, attaching `fds` as SCM_RIGHTS ancillary
/// data to the first byte. Short writes are completed with plain sends
/// (the fds ride only the first chunk, which is how SCM_RIGHTS works).
pub fn send_with_fds(stream: &UnixStream, bytes: &[u8], fds: &[RawFd]) -> io::Result<()> {
    assert!(fds.len() <= MAX_FDS, "at most {MAX_FDS} fds per message");
    assert!(!bytes.is_empty(), "ancillary data needs at least one byte");
    let mut control = CmsgBuf {
        bytes: [0; CMSG_HDR + MAX_FDS * std::mem::size_of::<c_int>()],
    };
    let control_len = CMSG_HDR + std::mem::size_of_val(fds);
    let mut iov = IoVec {
        base: bytes.as_ptr() as *mut c_void,
        len: bytes.len(),
    };
    let mut msg = MsgHdr {
        name: std::ptr::null_mut(),
        name_len: 0,
        iov: &mut iov,
        iov_len: 1,
        control: std::ptr::null_mut(),
        control_len: 0,
        flags: 0,
    };
    if !fds.is_empty() {
        // cmsghdr { len, level, type } followed by the fd array.
        control.bytes[..std::mem::size_of::<usize>()].copy_from_slice(&control_len.to_ne_bytes());
        let lvl_off = std::mem::size_of::<usize>();
        control.bytes[lvl_off..lvl_off + 4].copy_from_slice(&SOL_SOCKET.to_ne_bytes());
        control.bytes[lvl_off + 4..lvl_off + 8].copy_from_slice(&SCM_RIGHTS.to_ne_bytes());
        for (i, fd) in fds.iter().enumerate() {
            let off = CMSG_HDR + i * 4;
            control.bytes[off..off + 4].copy_from_slice(&fd.to_ne_bytes());
        }
        msg.control = control.bytes.as_mut_ptr() as *mut c_void;
        msg.control_len = control_len;
    }
    let sent = loop {
        // SAFETY: msg points at valid iovec/control buffers that outlive
        // the call.
        let n = unsafe { sendmsg(stream.as_raw_fd(), &msg, MSG_NOSIGNAL) };
        if n >= 0 {
            break n as usize;
        }
        let err = last_err();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    };
    // Any remainder is plain stream data (the fds went with byte 0).
    if sent < bytes.len() {
        (&mut (&*stream)).write_all(&bytes[sent..])?;
    }
    Ok(())
}

/// Receive into `buf`, collecting any SCM_RIGHTS fds (close-on-exec).
/// Returns `(bytes_read, fds)`; `bytes_read == 0` means the peer closed.
pub fn recv_with_fds(stream: &UnixStream, buf: &mut [u8]) -> io::Result<(usize, Vec<OwnedFd>)> {
    let mut control = CmsgBuf {
        bytes: [0; CMSG_HDR + MAX_FDS * std::mem::size_of::<c_int>()],
    };
    let mut iov = IoVec {
        base: buf.as_mut_ptr() as *mut c_void,
        len: buf.len(),
    };
    let mut msg = MsgHdr {
        name: std::ptr::null_mut(),
        name_len: 0,
        iov: &mut iov,
        iov_len: 1,
        control: control.bytes.as_mut_ptr() as *mut c_void,
        control_len: control.bytes.len(),
        flags: 0,
    };
    let got = loop {
        // SAFETY: msg points at valid iovec/control buffers.
        let n = unsafe { recvmsg(stream.as_raw_fd(), &mut msg, MSG_CMSG_CLOEXEC) };
        if n >= 0 {
            break n as usize;
        }
        let err = last_err();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    };
    let mut fds = Vec::new();
    if msg.control_len >= CMSG_HDR {
        let mut len_bytes = [0u8; std::mem::size_of::<usize>()];
        len_bytes.copy_from_slice(&control.bytes[..std::mem::size_of::<usize>()]);
        let cmsg_len = usize::from_ne_bytes(len_bytes);
        let lvl_off = std::mem::size_of::<usize>();
        let mut word = [0u8; 4];
        word.copy_from_slice(&control.bytes[lvl_off..lvl_off + 4]);
        let level = c_int::from_ne_bytes(word);
        word.copy_from_slice(&control.bytes[lvl_off + 4..lvl_off + 8]);
        let kind = c_int::from_ne_bytes(word);
        if level == SOL_SOCKET && kind == SCM_RIGHTS && cmsg_len > CMSG_HDR {
            let count = (cmsg_len - CMSG_HDR) / 4;
            for i in 0..count.min(MAX_FDS) {
                let off = CMSG_HDR + i * 4;
                word.copy_from_slice(&control.bytes[off..off + 4]);
                let fd = c_int::from_ne_bytes(word);
                if fd >= 0 {
                    // SAFETY: the kernel installed a fresh descriptor for
                    // this process; we are its sole owner.
                    fds.push(unsafe { OwnedFd::from_raw_fd(fd) });
                }
            }
        }
    }
    Ok((got, fds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn segment_is_shared_between_two_mappings() {
        let a = MemorySegment::create(8192).expect("create");
        // Duplicate the fd the way a peer would receive it.
        let dup = a.file.try_clone().expect("dup");
        let b = MemorySegment::from_fd(OwnedFd::from(dup), 8192).expect("map");
        assert_ne!(a.ptr(), b.ptr(), "two distinct mappings");
        // SAFETY: both mappings cover offset 0..8192 of the same pages.
        unsafe {
            let word_a = &*(a.ptr() as *const AtomicU32);
            let word_b = &*(b.ptr() as *const AtomicU32);
            word_a.store(0xdead_beef, Ordering::Release);
            assert_eq!(word_b.load(Ordering::Acquire), 0xdead_beef);
            word_b.store(7, Ordering::Release);
            assert_eq!(word_a.load(Ordering::Acquire), 7);
        }
    }

    #[test]
    fn short_segments_are_rejected() {
        let seg = MemorySegment::create(4096).expect("create");
        let dup = seg.file.try_clone().expect("dup");
        let err = MemorySegment::from_fd(OwnedFd::from(dup), 1 << 20)
            .expect_err("mapping past EOF must fail");
        assert!(err.to_string().contains("4096"), "{err}");
    }

    #[test]
    fn eventfd_signals_and_times_out() {
        let ev = EventFd::new().expect("eventfd");
        assert!(
            !ev.wait(Duration::from_millis(1)).expect("poll"),
            "no signal yet"
        );
        ev.signal();
        assert!(ev.wait(Duration::from_millis(100)).expect("poll"));
        // Drained: waits again.
        assert!(!ev.wait(Duration::from_millis(1)).expect("poll"));
    }

    #[test]
    fn eventfd_wakes_a_parked_thread() {
        let ev = std::sync::Arc::new(EventFd::new().expect("eventfd"));
        let ev2 = std::sync::Arc::clone(&ev);
        let waiter = std::thread::spawn(move || ev2.wait(Duration::from_secs(10)).expect("poll"));
        std::thread::sleep(Duration::from_millis(20));
        ev.signal();
        assert!(
            waiter.join().expect("no panic"),
            "signal must wake the waiter"
        );
    }

    #[test]
    fn fds_ride_the_socket() {
        let (left, right) = UnixStream::pair().expect("socketpair");
        let seg = MemorySegment::create(4096).expect("create");
        let ev = EventFd::new().expect("eventfd");
        // SAFETY: writes to our own fresh mapping.
        unsafe {
            (*(seg.ptr() as *const AtomicU32)).store(42, Ordering::Release);
        }
        send_with_fds(&left, b"hello", &[seg.raw_fd(), ev.raw_fd()]).expect("send");
        let mut buf = [0u8; 16];
        let (n, fds) = recv_with_fds(&right, &mut buf).expect("recv");
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(fds.len(), 2);
        let mut it = fds.into_iter();
        let remote = MemorySegment::from_fd(it.next().unwrap(), 4096).expect("map received");
        // SAFETY: same pages as `seg`.
        let seen = unsafe { (*(remote.ptr() as *const AtomicU32)).load(Ordering::Acquire) };
        assert_eq!(seen, 42, "received fd maps the same pages");
        let bell = EventFd::from_fd(it.next().unwrap());
        bell.signal();
        assert!(
            ev.wait(Duration::from_millis(100)).expect("poll"),
            "same eventfd object"
        );
    }

    #[test]
    fn hup_is_visible_through_poll() {
        let (left, right) = UnixStream::pair().expect("socketpair");
        drop(left);
        let mut fds = [PollFd {
            fd: right.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll(&mut fds, Some(Duration::from_millis(500))).expect("poll");
        assert_eq!(n, 1);
        assert!(
            fds[0].revents & (POLLHUP | POLLIN) != 0,
            "peer death must be visible: revents {:#x}",
            fds[0].revents
        );
    }

    #[test]
    fn plain_messages_carry_no_fds() {
        let (left, right) = UnixStream::pair().expect("socketpair");
        send_with_fds(&left, b"nofd", &[]).expect("send");
        let mut buf = [0u8; 8];
        let (n, fds) = recv_with_fds(&right, &mut buf).expect("recv");
        assert_eq!(&buf[..n], b"nofd");
        assert!(fds.is_empty());
    }
}
