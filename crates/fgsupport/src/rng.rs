//! A small deterministic PRNG (SplitMix64) replacing the workspace's uses
//! of `rand::rngs::StdRng`. Not cryptographic; statistical quality is more
//! than enough for test-input generation and randomized schedules.

/// Deterministic 64-bit PRNG seeded from a single `u64`.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator (same role as `StdRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below what tests can observe.
        ((self.gen_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    pub fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + self.gen_f64() * (range.end - range.start)
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.gen_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).gen_u64(), c.gen_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let x = r.gen_range_f64(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_covers_small_bounds() {
        let mut r = Rng64::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
