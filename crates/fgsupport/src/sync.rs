//! A `parking_lot`-style mutex: `lock()` returns the guard directly (no
//! `Result`), and a panic while holding the lock does not poison it.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. A lock held across
    /// a panic is recovered transparently rather than surfaced as an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
