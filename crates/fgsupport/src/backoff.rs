//! Exponential backoff for spin loops, mirroring `crossbeam::utils::Backoff`.

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff: spin briefly at first, then yield the thread.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Fresh backoff in the spinning regime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to the spinning regime (call after useful work was found).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-wait a few cycles; for very short critical sections.
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Back off, eventually yielding to the OS scheduler; for waits where
    /// another thread must make progress first.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Whether snoozing has escalated to yielding (a hint to park instead).
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin();
    }
}
