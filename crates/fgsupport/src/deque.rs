//! Work-stealing deque mirroring the `crossbeam::deque` API surface the
//! workspace uses: per-worker LIFO deques with FIFO stealing plus a global
//! injector. Implemented over shared mutex-guarded `VecDeque`s — the
//! runtime's deques see bursts of ≤64 items, where an uncontended lock is
//! cheaper than the fences of a Chase-Lev deque.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// One item was stolen.
    Success(T),
    /// The victim was empty.
    Empty,
    /// The attempt lost a race and should be retried.
    Retry,
}

/// The owner's end of a worker deque (LIFO pop from the back).
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's handle to some worker's deque (FIFO steal from the front).
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// New deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Self {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push onto the owner's end.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Pop from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// A stealer handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest item from the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Number of items currently in the victim's deque.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the victim's deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A global injector queue every worker can push to and steal from.
#[derive(Debug, Default)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an item.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Number of queued items at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the injector was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success('a'));
        assert_eq!(inj.steal(), Steal::Success('b'));
        assert_eq!(inj.steal(), Steal::Empty);
    }
}
