//! Work-stealing deque mirroring the `crossbeam::deque` API surface the
//! workspace uses: per-worker LIFO deques with FIFO stealing plus a global
//! injector. Implemented over shared mutex-guarded `VecDeque`s — the
//! runtime's deques see bursts of ≤64 items, where an uncontended lock is
//! cheaper than the fences of a Chase-Lev deque.

use crate::rng::Rng64;
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// One item was stolen.
    Success(T),
    /// The victim was empty.
    Empty,
    /// The attempt lost a race and should be retried.
    Retry,
}

/// The owner's end of a worker deque (LIFO pop from the back).
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's handle to some worker's deque (FIFO steal from the front).
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// New deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Self {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push onto the owner's end.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Pop from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// A stealer handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest item from the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Number of items currently in the victim's deque.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the victim's deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A global injector queue every worker can push to and steal from.
#[derive(Debug, Default)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an item.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Number of queued items at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the injector was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Victim-scan randomizer for work-stealing pools.
///
/// A thief that always scans victims in the same order (e.g. `worker+1,
/// worker+2, …`) drains low-offset victims first: under contention the
/// highest-offset workers are systematically stolen from last, so their
/// backlogs linger while early victims run dry — the exact load imbalance
/// a stealing pool exists to remove. `StealOrder` hands each steal attempt
/// a pseudo-random start index (SplitMix64 over a shared counter, the same
/// generator as [`crate::rng::Rng64`]), so every victim is first in line
/// equally often while the scan itself stays a deterministic rotation —
/// each attempt still visits every victim exactly once.
#[derive(Debug, Default)]
pub struct StealOrder {
    ticket: AtomicU64,
}

impl StealOrder {
    /// New randomizer starting from ticket zero (deterministic sequence).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start index in `[0, victims)` for the next scan; `victims` must be
    /// nonzero. Consecutive calls spread starts uniformly over the victims.
    pub fn start(&self, victims: usize) -> usize {
        debug_assert!(victims > 0, "start() with no victims");
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        Rng64::seed_from_u64(ticket).gen_below(victims as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success('a'));
        assert_eq!(inj.steal(), Steal::Success('b'));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn steal_order_reaches_every_victim() {
        let order = StealOrder::new();
        let mut seen = HashSet::new();
        for _ in 0..256 {
            let s = order.start(8);
            assert!(s < 8);
            seen.insert(s);
        }
        // 256 draws over 8 buckets: a scan that still favored a fixed
        // start would leave most buckets untouched.
        assert_eq!(seen.len(), 8, "starts {seen:?} never covered all victims");
    }

    #[test]
    fn competing_stealers_drain_every_victim_without_loss() {
        use std::sync::atomic::AtomicUsize;

        const VICTIMS: usize = 4;
        const ITEMS: usize = 64;
        let workers: Vec<Worker<usize>> = (0..VICTIMS).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
        for (v, w) in workers.iter().enumerate() {
            for i in 0..ITEMS {
                w.push(v * ITEMS + i);
            }
        }
        let order = StealOrder::new();
        let taken = AtomicUsize::new(0);
        let mut per_thief: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..VICTIMS)
                .map(|_| {
                    scope.spawn(|| {
                        let mut got = Vec::new();
                        while taken.load(Ordering::Relaxed) < VICTIMS * ITEMS {
                            let start = order.start(VICTIMS);
                            let mut hit = false;
                            for off in 0..VICTIMS {
                                if let Steal::Success(v) = stealers[(start + off) % VICTIMS].steal()
                                {
                                    taken.fetch_add(1, Ordering::Relaxed);
                                    got.push(v);
                                    hit = true;
                                    break;
                                }
                            }
                            if !hit {
                                break; // everything claimed by the others
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = per_thief.drain(..).flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..VICTIMS * ITEMS).collect();
        assert_eq!(all, expect, "competing stealers lost or duplicated items");
    }
}
