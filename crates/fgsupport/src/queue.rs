//! MPMC FIFO queues: an unbounded [`SegQueue`] mirroring
//! `crossbeam::queue::SegQueue`, and a bounded [`Bounded`] variant with
//! blocking pops for producer/consumer pipelines that need *admission
//! control* — a full queue rejects instead of growing without bound.
//!
//! The workspace pushes and pops in bursts of at most a few dozen items, so
//! a mutex-guarded ring buffer is competitive with a lock-free segment
//! queue while staying dependency-free and trivially correct.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Unbounded FIFO queue usable from many threads.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an element at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Remove the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A bounded MPMC FIFO queue.
///
/// `try_push` fails (returning the value) when the queue holds `capacity`
/// elements — the backpressure signal a submitting thread turns into an
/// "overloaded" rejection. Consumers use [`Bounded::pop_timeout`] so they
/// can periodically re-check shutdown flags without busy-waiting.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: StdMutex<VecDeque<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// New empty queue admitting at most `capacity` elements (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: StdMutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            available: Condvar::new(),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append at the tail, or give the value back when the queue is full.
    /// On success returns the queue depth *after* the push (for high-water
    /// tracking).
    pub fn try_push(&self, value: T) -> Result<usize, T> {
        let mut q = self.guard();
        if q.len() >= self.capacity {
            return Err(value);
        }
        q.push_back(value);
        let depth = q.len();
        drop(q);
        self.available.notify_one();
        Ok(depth)
    }

    /// Remove the head element if one is present, without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.guard().pop_front()
    }

    /// Remove the head element, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.guard();
        if let Some(v) = q.pop_front() {
            return Some(v);
        }
        let (mut q, _) = match self.available.wait_timeout(q, timeout) {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.pop_front()
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_rejects_when_full() {
        let q = Bounded::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "full queue returns the value");
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2), "space freed by pop");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bounded_pop_timeout_returns_quickly_when_empty() {
        let q: Bounded<u32> = Bounded::new(4);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn bounded_pop_timeout_wakes_on_push() {
        let q = std::sync::Arc::new(Bounded::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }

    #[test]
    fn bounded_capacity_is_at_least_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(9), Ok(1));
        assert!(q.try_push(10).is_err());
    }
}
