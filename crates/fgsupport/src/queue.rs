//! An unbounded MPMC FIFO queue mirroring `crossbeam::queue::SegQueue`.
//!
//! The workspace pushes and pops in bursts of at most a few dozen items, so
//! a mutex-guarded ring buffer is competitive with a lock-free segment
//! queue while staying dependency-free and trivially correct.

use crate::sync::Mutex;
use std::collections::VecDeque;

/// Unbounded FIFO queue usable from many threads.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an element at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Remove the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
