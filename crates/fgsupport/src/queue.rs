//! MPMC FIFO queues: an unbounded [`SegQueue`] mirroring
//! `crossbeam::queue::SegQueue`, and a bounded [`Bounded`] variant with
//! blocking pops for producer/consumer pipelines that need *admission
//! control* — a full queue rejects instead of growing without bound.
//!
//! The workspace pushes and pops in bursts of at most a few dozen items, so
//! a mutex-guarded ring buffer is competitive with a lock-free segment
//! queue while staying dependency-free and trivially correct.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Unbounded FIFO queue usable from many threads.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an element at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Remove the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A bounded MPMC FIFO queue.
///
/// `try_push` fails (returning the value) when the queue holds `capacity`
/// elements — the backpressure signal a submitting thread turns into an
/// "overloaded" rejection. Consumers use [`Bounded::pop_timeout`] so they
/// can periodically re-check shutdown flags without busy-waiting.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: StdMutex<VecDeque<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// New empty queue admitting at most `capacity` elements (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: StdMutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            available: Condvar::new(),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append at the tail, or give the value back when the queue is full.
    /// On success returns the queue depth *after* the push (for high-water
    /// tracking).
    pub fn try_push(&self, value: T) -> Result<usize, T> {
        let mut q = self.guard();
        if q.len() >= self.capacity {
            return Err(value);
        }
        q.push_back(value);
        let depth = q.len();
        drop(q);
        self.available.notify_one();
        Ok(depth)
    }

    /// Remove the head element if one is present, without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.guard().pop_front()
    }

    /// Remove the head element, waiting up to `timeout` for one to arrive.
    ///
    /// Loops on the *remaining* budget: a spurious condvar wakeup, or a
    /// notification whose element a racing [`Bounded::try_pop`] consumed
    /// first, puts the caller back to sleep for the rest of the timeout
    /// instead of returning `None` early. `None` therefore means the full
    /// timeout elapsed with nothing to take.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.guard();
        loop {
            if let Some(v) = q.pop_front() {
                return Some(v);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            q = match self.available.wait_timeout(q, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_rejects_when_full() {
        let q = Bounded::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "full queue returns the value");
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2), "space freed by pop");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bounded_pop_timeout_returns_quickly_when_empty() {
        let q: Bounded<u32> = Bounded::new(4);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn bounded_pop_timeout_wakes_on_push() {
        let q = std::sync::Arc::new(Bounded::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }

    /// A competing `try_pop` consumer that steals the element behind a
    /// notification must not make the blocked `pop_timeout` give up early:
    /// the waiter keeps its remaining budget and eventually gets an item.
    #[test]
    fn bounded_pop_timeout_survives_stolen_notifications() {
        let q = std::sync::Arc::new(Bounded::new(8));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        // Push-then-steal storm: each push notifies the waiter, and the
        // same-thread try_pop usually wins the race to the element, so the
        // waiter repeatedly wakes to an empty queue. The one-shot wait of
        // the old implementation returned None on the first such wakeup.
        for i in 0..200u32 {
            q.try_push(i).unwrap();
            let _ = q.try_pop();
            std::thread::sleep(Duration::from_micros(200));
        }
        // Whatever the interleaving, a final element guarantees the waiter
        // something to take (a full queue here means elements are already
        // waiting for it, which is just as good).
        let _ = q.try_push(u32::MAX);
        let got = waiter.join().unwrap();
        assert!(
            got.is_some(),
            "pop_timeout returned None with ~30 s of budget left"
        );
    }

    #[test]
    fn bounded_capacity_is_at_least_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(9), Ok(1));
        assert!(q.try_push(10).is_err());
    }
}
