//! A minimal micro-benchmark harness mirroring the slice of the `criterion`
//! API the workspace's benches use: groups, throughput annotation, batched
//! iteration, and the `criterion_group!`/`criterion_main!` macros. It
//! measures a mean wall-clock per iteration and prints one line per
//! benchmark — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long to keep sampling one benchmark before reporting.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group(name.to_string());
        g.run(None, f);
        g.finish();
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// How costly the per-iteration setup output is to hold; accepted for API
/// compatibility, the harness times every routine call individually either
/// way.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap input.
    SmallInput,
    /// Expensive input (clone of a large buffer).
    LargeInput,
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(Some(id.text.clone()), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no parameter.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(Some(name.into()), f);
        self
    }

    /// End the group (prints nothing; lines are emitted per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: Option<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let label = match id {
            Some(id) => format!("{}/{}", self.name, id),
            None => self.name.clone(),
        };
        if b.iters == 0 {
            println!("{label:60} (no iterations)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("{:>12.3} Melem/s", n as f64 / ns_per_iter * 1e3),
            Throughput::Bytes(n) => format!("{:>12.3} MB/s", n as f64 / ns_per_iter * 1e3),
        });
        println!(
            "{label:60} {ns_per_iter:>14.1} ns/iter{}",
            rate.map(|r| format!("  {r}")).unwrap_or_default()
        );
    }
}

/// Passed to each benchmark closure; drives the timed loop.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the sample cap or time budget is reached.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warmup.
        black_box(f());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but each iteration consumes a fresh input
    /// built by `setup`; only `routine` is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Linear-interpolated percentile of a **sorted** sample set, `p` in
/// `0.0..=100.0`. Returns 0.0 for an empty set.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Latency-distribution summary: the percentiles a serving layer reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Summarize `samples` (sorted in place). Units are the caller's.
    pub fn from_unsorted(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(f64::total_cmp);
        Self {
            count: samples.len() as u64,
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
            max: samples[samples.len() - 1],
        }
    }
}

/// Bundle benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $func(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
        assert!(calls >= 4, "warmup + >=3 samples, got {calls}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentiles_summarize_distribution() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // Scramble; from_unsorted must sort.
        v.reverse();
        let p = Percentiles::from_unsorted(&mut v);
        assert_eq!(p.count, 100);
        assert_eq!(p.max, 100.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!(p.p95 > 90.0 && p.p95 < 100.0);
        assert!(p.p99 > p.p95 && p.p99 <= 100.0);
    }

    #[test]
    fn percentiles_of_empty_are_zero() {
        assert_eq!(Percentiles::from_unsorted(&mut []), Percentiles::default());
    }
}
