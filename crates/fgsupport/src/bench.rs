//! A minimal micro-benchmark harness mirroring the slice of the `criterion`
//! API the workspace's benches use: groups, throughput annotation, batched
//! iteration, and the `criterion_group!`/`criterion_main!` macros. It
//! measures a mean wall-clock per iteration and prints one line per
//! benchmark — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long to keep sampling one benchmark before reporting.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group(name.to_string());
        g.run(None, f);
        g.finish();
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// How costly the per-iteration setup output is to hold; accepted for API
/// compatibility, the harness times every routine call individually either
/// way.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap input.
    SmallInput,
    /// Expensive input (clone of a large buffer).
    LargeInput,
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(Some(id.text.clone()), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no parameter.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(Some(name.into()), f);
        self
    }

    /// End the group (prints nothing; lines are emitted per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: Option<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let label = match id {
            Some(id) => format!("{}/{}", self.name, id),
            None => self.name.clone(),
        };
        if b.iters == 0 {
            println!("{label:60} (no iterations)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("{:>12.3} Melem/s", n as f64 / ns_per_iter * 1e3),
            Throughput::Bytes(n) => format!("{:>12.3} MB/s", n as f64 / ns_per_iter * 1e3),
        });
        println!(
            "{label:60} {ns_per_iter:>14.1} ns/iter{}",
            rate.map(|r| format!("  {r}")).unwrap_or_default()
        );
    }
}

/// Passed to each benchmark closure; drives the timed loop.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the sample cap or time budget is reached.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warmup.
        black_box(f());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but each iteration consumes a fresh input
    /// built by `setup`; only `routine` is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $func(&mut criterion); )+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
        assert!(calls >= 4, "warmup + >=3 samples, got {calls}");
    }
}
