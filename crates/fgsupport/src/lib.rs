//! Support primitives for the fgfft workspace.
//!
//! The workspace is built and tested in hermetic environments with no access
//! to crates.io, so everything external the seed relied on (parking_lot,
//! crossbeam, rand, serde_json, criterion) is replaced by the small,
//! dependency-free equivalents in this crate. Each module documents which
//! upstream API it mirrors; the mirrored subset is exactly what the
//! workspace uses, no more.

pub mod backoff;
pub mod bench;
pub mod deque;
pub mod json;
pub mod queue;
pub mod rng;
pub mod shm;
pub mod sync;
