//! Minimal JSON tree, writer, and parser — the subset of `serde_json` the
//! workspace needs: serializing figures/reports and round-tripping machine
//! configurations. Object key order is preserved (insertion order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (must be a nonnegative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Value::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

/// Compact single-line serialization (`value.to_string()`).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a message describing the first error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (the input is valid UTF-8).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj(vec![
            ("name", Value::Str("fig1".into())),
            ("n", Value::Num(1048576.0)),
            ("ok", Value::Bool(true)),
            (
                "series",
                Value::Arr(vec![Value::Num(1.5), Value::Null, Value::Num(-3.0)]),
            ),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = parse(r#"{"a\n\"b":[{"x":1e3},[]],"u":"A"}"#).unwrap();
        assert_eq!(v.get("u").unwrap().as_str(), Some("A"));
        let arr = match v.get("a\n\"b").unwrap() {
            Value::Arr(a) => a,
            _ => panic!(),
        };
        assert_eq!(arr[0].get("x").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Num(500_000_000.0).to_string(), "500000000");
        assert_eq!(Value::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
