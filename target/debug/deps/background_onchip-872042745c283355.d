/root/repo/target/debug/deps/background_onchip-872042745c283355.d: crates/bench/src/bin/background_onchip.rs

/root/repo/target/debug/deps/background_onchip-872042745c283355: crates/bench/src/bin/background_onchip.rs

crates/bench/src/bin/background_onchip.rs:
