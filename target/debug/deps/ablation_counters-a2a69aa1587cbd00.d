/root/repo/target/debug/deps/ablation_counters-a2a69aa1587cbd00.d: crates/bench/src/bin/ablation_counters.rs Cargo.toml

/root/repo/target/debug/deps/libablation_counters-a2a69aa1587cbd00.rmeta: crates/bench/src/bin/ablation_counters.rs Cargo.toml

crates/bench/src/bin/ablation_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
