/root/repo/target/debug/deps/quickstart-592c311539ca9331.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-592c311539ca9331.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
