/root/repo/target/debug/deps/scheduling_lab-9675b66534a81d96.d: examples/scheduling_lab.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling_lab-9675b66534a81d96.rmeta: examples/scheduling_lab.rs Cargo.toml

examples/scheduling_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
