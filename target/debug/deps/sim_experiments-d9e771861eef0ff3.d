/root/repo/target/debug/deps/sim_experiments-d9e771861eef0ff3.d: tests/tests/sim_experiments.rs

/root/repo/target/debug/deps/sim_experiments-d9e771861eef0ff3: tests/tests/sim_experiments.rs

tests/tests/sim_experiments.rs:
