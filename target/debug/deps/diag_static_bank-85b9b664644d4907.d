/root/repo/target/debug/deps/diag_static_bank-85b9b664644d4907.d: crates/bench/src/bin/diag_static_bank.rs

/root/repo/target/debug/deps/diag_static_bank-85b9b664644d4907: crates/bench/src/bin/diag_static_bank.rs

crates/bench/src/bin/diag_static_bank.rs:
