/root/repo/target/debug/deps/correctness-cd21733537a5ed9a.d: tests/tests/correctness.rs

/root/repo/target/debug/deps/correctness-cd21733537a5ed9a: tests/tests/correctness.rs

tests/tests/correctness.rs:
