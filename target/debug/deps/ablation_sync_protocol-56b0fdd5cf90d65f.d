/root/repo/target/debug/deps/ablation_sync_protocol-56b0fdd5cf90d65f.d: crates/bench/src/bin/ablation_sync_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sync_protocol-56b0fdd5cf90d65f.rmeta: crates/bench/src/bin/ablation_sync_protocol.rs Cargo.toml

crates/bench/src/bin/ablation_sync_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
