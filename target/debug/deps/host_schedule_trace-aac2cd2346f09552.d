/root/repo/target/debug/deps/host_schedule_trace-aac2cd2346f09552.d: crates/bench/src/bin/host_schedule_trace.rs

/root/repo/target/debug/deps/host_schedule_trace-aac2cd2346f09552: crates/bench/src/bin/host_schedule_trace.rs

crates/bench/src/bin/host_schedule_trace.rs:
