/root/repo/target/debug/deps/diag-c5a0f27cfd560a0a.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-c5a0f27cfd560a0a: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
