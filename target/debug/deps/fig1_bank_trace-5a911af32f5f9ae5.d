/root/repo/target/debug/deps/fig1_bank_trace-5a911af32f5f9ae5.d: crates/bench/src/bin/fig1_bank_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_bank_trace-5a911af32f5f9ae5.rmeta: crates/bench/src/bin/fig1_bank_trace.rs Cargo.toml

crates/bench/src/bin/fig1_bank_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
