/root/repo/target/debug/deps/table_peak_model-e1fb43eb84afe354.d: crates/bench/src/bin/table_peak_model.rs

/root/repo/target/debug/deps/table_peak_model-e1fb43eb84afe354: crates/bench/src/bin/table_peak_model.rs

crates/bench/src/bin/table_peak_model.rs:
