/root/repo/target/debug/deps/fig1_bank_trace-99cb19597f3d5688.d: crates/bench/src/bin/fig1_bank_trace.rs

/root/repo/target/debug/deps/fig1_bank_trace-99cb19597f3d5688: crates/bench/src/bin/fig1_bank_trace.rs

crates/bench/src/bin/fig1_bank_trace.rs:
