/root/repo/target/debug/deps/fft_repro-52e742e6bab507d1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fft_repro-52e742e6bab507d1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
