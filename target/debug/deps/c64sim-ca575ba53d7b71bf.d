/root/repo/target/debug/deps/c64sim-ca575ba53d7b71bf.d: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libc64sim-ca575ba53d7b71bf.rmeta: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs Cargo.toml

crates/c64sim/src/lib.rs:
crates/c64sim/src/address.rs:
crates/c64sim/src/config.rs:
crates/c64sim/src/engine.rs:
crates/c64sim/src/memory.rs:
crates/c64sim/src/sched.rs:
crates/c64sim/src/stats.rs:
crates/c64sim/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
