/root/repo/target/debug/deps/fft_repro-c490833a8e1647bd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfft_repro-c490833a8e1647bd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfft_repro-c490833a8e1647bd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
