/root/repo/target/debug/deps/diag-78b3ee4bbb733287.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-78b3ee4bbb733287: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
