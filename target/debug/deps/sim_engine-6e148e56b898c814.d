/root/repo/target/debug/deps/sim_engine-6e148e56b898c814.d: crates/bench/benches/sim_engine.rs

/root/repo/target/debug/deps/sim_engine-6e148e56b898c814: crates/bench/benches/sim_engine.rs

crates/bench/benches/sim_engine.rs:
