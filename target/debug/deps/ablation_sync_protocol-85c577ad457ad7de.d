/root/repo/target/debug/deps/ablation_sync_protocol-85c577ad457ad7de.d: crates/bench/src/bin/ablation_sync_protocol.rs

/root/repo/target/debug/deps/ablation_sync_protocol-85c577ad457ad7de: crates/bench/src/bin/ablation_sync_protocol.rs

crates/bench/src/bin/ablation_sync_protocol.rs:
