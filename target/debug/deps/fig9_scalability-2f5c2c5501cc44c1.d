/root/repo/target/debug/deps/fig9_scalability-2f5c2c5501cc44c1.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/debug/deps/fig9_scalability-2f5c2c5501cc44c1: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
