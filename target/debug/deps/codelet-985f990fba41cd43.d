/root/repo/target/debug/deps/codelet-985f990fba41cd43.d: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcodelet-985f990fba41cd43.rmeta: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs Cargo.toml

crates/codelet/src/lib.rs:
crates/codelet/src/amm.rs:
crates/codelet/src/counter.rs:
crates/codelet/src/graph.rs:
crates/codelet/src/pool.rs:
crates/codelet/src/runtime.rs:
crates/codelet/src/stats.rs:
crates/codelet/src/trace.rs:
crates/codelet/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
