/root/repo/target/debug/deps/ablation_pool_order-79d12520e4841520.d: crates/bench/src/bin/ablation_pool_order.rs

/root/repo/target/debug/deps/ablation_pool_order-79d12520e4841520: crates/bench/src/bin/ablation_pool_order.rs

crates/bench/src/bin/ablation_pool_order.rs:
