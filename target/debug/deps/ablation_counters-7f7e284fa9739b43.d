/root/repo/target/debug/deps/ablation_counters-7f7e284fa9739b43.d: crates/bench/src/bin/ablation_counters.rs Cargo.toml

/root/repo/target/debug/deps/libablation_counters-7f7e284fa9739b43.rmeta: crates/bench/src/bin/ablation_counters.rs Cargo.toml

crates/bench/src/bin/ablation_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
