/root/repo/target/debug/deps/bitrev-2aba24f733d6fe7e.d: crates/bench/benches/bitrev.rs

/root/repo/target/debug/deps/bitrev-2aba24f733d6fe7e: crates/bench/benches/bitrev.rs

crates/bench/benches/bitrev.rs:
