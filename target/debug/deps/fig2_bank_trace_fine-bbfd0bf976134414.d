/root/repo/target/debug/deps/fig2_bank_trace_fine-bbfd0bf976134414.d: crates/bench/src/bin/fig2_bank_trace_fine.rs

/root/repo/target/debug/deps/fig2_bank_trace_fine-bbfd0bf976134414: crates/bench/src/bin/fig2_bank_trace_fine.rs

crates/bench/src/bin/fig2_bank_trace_fine.rs:
