/root/repo/target/debug/deps/diag_static_bank-cb15a8ce55bcd41c.d: crates/bench/src/bin/diag_static_bank.rs Cargo.toml

/root/repo/target/debug/deps/libdiag_static_bank-cb15a8ce55bcd41c.rmeta: crates/bench/src/bin/diag_static_bank.rs Cargo.toml

crates/bench/src/bin/diag_static_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
