/root/repo/target/debug/deps/background_onchip-46d42d64a8da4623.d: crates/bench/src/bin/background_onchip.rs Cargo.toml

/root/repo/target/debug/deps/libbackground_onchip-46d42d64a8da4623.rmeta: crates/bench/src/bin/background_onchip.rs Cargo.toml

crates/bench/src/bin/background_onchip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
