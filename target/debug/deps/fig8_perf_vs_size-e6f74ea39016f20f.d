/root/repo/target/debug/deps/fig8_perf_vs_size-e6f74ea39016f20f.d: crates/bench/src/bin/fig8_perf_vs_size.rs

/root/repo/target/debug/deps/fig8_perf_vs_size-e6f74ea39016f20f: crates/bench/src/bin/fig8_perf_vs_size.rs

crates/bench/src/bin/fig8_perf_vs_size.rs:
