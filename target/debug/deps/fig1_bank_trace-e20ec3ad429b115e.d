/root/repo/target/debug/deps/fig1_bank_trace-e20ec3ad429b115e.d: crates/bench/src/bin/fig1_bank_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_bank_trace-e20ec3ad429b115e.rmeta: crates/bench/src/bin/fig1_bank_trace.rs Cargo.toml

crates/bench/src/bin/fig1_bank_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
