/root/repo/target/debug/deps/fft_repro-91df85a6add4fc6d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfft_repro-91df85a6add4fc6d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
