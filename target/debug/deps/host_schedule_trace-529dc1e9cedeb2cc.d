/root/repo/target/debug/deps/host_schedule_trace-529dc1e9cedeb2cc.d: crates/bench/src/bin/host_schedule_trace.rs

/root/repo/target/debug/deps/host_schedule_trace-529dc1e9cedeb2cc: crates/bench/src/bin/host_schedule_trace.rs

crates/bench/src/bin/host_schedule_trace.rs:
