/root/repo/target/debug/deps/pools-8c8bc10d8e4d273a.d: crates/bench/benches/pools.rs Cargo.toml

/root/repo/target/debug/deps/libpools-8c8bc10d8e4d273a.rmeta: crates/bench/benches/pools.rs Cargo.toml

crates/bench/benches/pools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
