/root/repo/target/debug/deps/spectral_analysis-d57eff9514c11b12.d: examples/spectral_analysis.rs

/root/repo/target/debug/deps/spectral_analysis-d57eff9514c11b12: examples/spectral_analysis.rs

examples/spectral_analysis.rs:
