/root/repo/target/debug/deps/sim_invariants-737fa79f79ddf395.d: tests/tests/sim_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsim_invariants-737fa79f79ddf395.rmeta: tests/tests/sim_invariants.rs Cargo.toml

tests/tests/sim_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
