/root/repo/target/debug/deps/host_comparison-dbc2f363201163eb.d: crates/bench/src/bin/host_comparison.rs

/root/repo/target/debug/deps/host_comparison-dbc2f363201163eb: crates/bench/src/bin/host_comparison.rs

crates/bench/src/bin/host_comparison.rs:
