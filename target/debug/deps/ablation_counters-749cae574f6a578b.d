/root/repo/target/debug/deps/ablation_counters-749cae574f6a578b.d: crates/bench/src/bin/ablation_counters.rs

/root/repo/target/debug/deps/ablation_counters-749cae574f6a578b: crates/bench/src/bin/ablation_counters.rs

crates/bench/src/bin/ablation_counters.rs:
