/root/repo/target/debug/deps/transforms-6a735d42679dfc29.d: tests/tests/transforms.rs

/root/repo/target/debug/deps/transforms-6a735d42679dfc29: tests/tests/transforms.rs

tests/tests/transforms.rs:
