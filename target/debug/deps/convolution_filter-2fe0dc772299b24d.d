/root/repo/target/debug/deps/convolution_filter-2fe0dc772299b24d.d: examples/convolution_filter.rs Cargo.toml

/root/repo/target/debug/deps/libconvolution_filter-2fe0dc772299b24d.rmeta: examples/convolution_filter.rs Cargo.toml

examples/convolution_filter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
