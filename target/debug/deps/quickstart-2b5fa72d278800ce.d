/root/repo/target/debug/deps/quickstart-2b5fa72d278800ce.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-2b5fa72d278800ce: examples/quickstart.rs

examples/quickstart.rs:
