/root/repo/target/debug/deps/ablation_sync_protocol-ff1037f96cc6f472.d: crates/bench/src/bin/ablation_sync_protocol.rs

/root/repo/target/debug/deps/ablation_sync_protocol-ff1037f96cc6f472: crates/bench/src/bin/ablation_sync_protocol.rs

crates/bench/src/bin/ablation_sync_protocol.rs:
