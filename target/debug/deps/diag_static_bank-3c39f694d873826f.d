/root/repo/target/debug/deps/diag_static_bank-3c39f694d873826f.d: crates/bench/src/bin/diag_static_bank.rs Cargo.toml

/root/repo/target/debug/deps/libdiag_static_bank-3c39f694d873826f.rmeta: crates/bench/src/bin/diag_static_bank.rs Cargo.toml

crates/bench/src/bin/diag_static_bank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
