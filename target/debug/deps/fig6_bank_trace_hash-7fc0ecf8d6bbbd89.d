/root/repo/target/debug/deps/fig6_bank_trace_hash-7fc0ecf8d6bbbd89.d: crates/bench/src/bin/fig6_bank_trace_hash.rs

/root/repo/target/debug/deps/fig6_bank_trace_hash-7fc0ecf8d6bbbd89: crates/bench/src/bin/fig6_bank_trace_hash.rs

crates/bench/src/bin/fig6_bank_trace_hash.rs:
