/root/repo/target/debug/deps/host_fft-cdf1741c7d2fc0c2.d: crates/bench/benches/host_fft.rs

/root/repo/target/debug/deps/host_fft-cdf1741c7d2fc0c2: crates/bench/benches/host_fft.rs

crates/bench/benches/host_fft.rs:
