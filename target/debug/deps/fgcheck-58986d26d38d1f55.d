/root/repo/target/debug/deps/fgcheck-58986d26d38d1f55.d: tests/tests/fgcheck.rs

/root/repo/target/debug/deps/fgcheck-58986d26d38d1f55: tests/tests/fgcheck.rs

tests/tests/fgcheck.rs:
