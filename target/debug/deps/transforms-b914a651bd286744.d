/root/repo/target/debug/deps/transforms-b914a651bd286744.d: crates/bench/benches/transforms.rs Cargo.toml

/root/repo/target/debug/deps/libtransforms-b914a651bd286744.rmeta: crates/bench/benches/transforms.rs Cargo.toml

crates/bench/benches/transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
