/root/repo/target/debug/deps/ablation_guided-378813f0304ebff9.d: crates/bench/src/bin/ablation_guided.rs

/root/repo/target/debug/deps/ablation_guided-378813f0304ebff9: crates/bench/src/bin/ablation_guided.rs

crates/bench/src/bin/ablation_guided.rs:
