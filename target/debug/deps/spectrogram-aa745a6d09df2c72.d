/root/repo/target/debug/deps/spectrogram-aa745a6d09df2c72.d: examples/spectrogram.rs

/root/repo/target/debug/deps/spectrogram-aa745a6d09df2c72: examples/spectrogram.rs

examples/spectrogram.rs:
