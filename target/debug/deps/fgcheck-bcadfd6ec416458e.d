/root/repo/target/debug/deps/fgcheck-bcadfd6ec416458e.d: crates/fgcheck/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfgcheck-bcadfd6ec416458e.rmeta: crates/fgcheck/src/main.rs Cargo.toml

crates/fgcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
