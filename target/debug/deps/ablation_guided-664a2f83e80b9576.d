/root/repo/target/debug/deps/ablation_guided-664a2f83e80b9576.d: crates/bench/src/bin/ablation_guided.rs

/root/repo/target/debug/deps/ablation_guided-664a2f83e80b9576: crates/bench/src/bin/ablation_guided.rs

crates/bench/src/bin/ablation_guided.rs:
