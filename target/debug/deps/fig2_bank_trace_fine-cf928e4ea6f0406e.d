/root/repo/target/debug/deps/fig2_bank_trace_fine-cf928e4ea6f0406e.d: crates/bench/src/bin/fig2_bank_trace_fine.rs

/root/repo/target/debug/deps/fig2_bank_trace_fine-cf928e4ea6f0406e: crates/bench/src/bin/fig2_bank_trace_fine.rs

crates/bench/src/bin/fig2_bank_trace_fine.rs:
