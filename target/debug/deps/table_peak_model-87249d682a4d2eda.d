/root/repo/target/debug/deps/table_peak_model-87249d682a4d2eda.d: crates/bench/src/bin/table_peak_model.rs

/root/repo/target/debug/deps/table_peak_model-87249d682a4d2eda: crates/bench/src/bin/table_peak_model.rs

crates/bench/src/bin/table_peak_model.rs:
