/root/repo/target/debug/deps/host_fft-6129ef8e4a28492c.d: crates/bench/benches/host_fft.rs Cargo.toml

/root/repo/target/debug/deps/libhost_fft-6129ef8e4a28492c.rmeta: crates/bench/benches/host_fft.rs Cargo.toml

crates/bench/benches/host_fft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
