/root/repo/target/debug/deps/fgfft-1488fa6287ef1e40.d: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs

/root/repo/target/debug/deps/fgfft-1488fa6287ef1e40: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs

crates/fgfft/src/lib.rs:
crates/fgfft/src/api.rs:
crates/fgfft/src/bitrev.rs:
crates/fgfft/src/bluestein.rs:
crates/fgfft/src/complex.rs:
crates/fgfft/src/exec/mod.rs:
crates/fgfft/src/exec/shared.rs:
crates/fgfft/src/fft2d.rs:
crates/fgfft/src/graph.rs:
crates/fgfft/src/kernel.rs:
crates/fgfft/src/model.rs:
crates/fgfft/src/plan.rs:
crates/fgfft/src/reference.rs:
crates/fgfft/src/rfft.rs:
crates/fgfft/src/simwork.rs:
crates/fgfft/src/stft.rs:
crates/fgfft/src/stockham.rs:
crates/fgfft/src/twiddle.rs:
crates/fgfft/src/window.rs:
