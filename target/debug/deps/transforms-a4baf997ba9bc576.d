/root/repo/target/debug/deps/transforms-a4baf997ba9bc576.d: crates/bench/benches/transforms.rs

/root/repo/target/debug/deps/transforms-a4baf997ba9bc576: crates/bench/benches/transforms.rs

crates/bench/benches/transforms.rs:
