/root/repo/target/debug/deps/fig2_bank_trace_fine-b321988276585c45.d: crates/bench/src/bin/fig2_bank_trace_fine.rs

/root/repo/target/debug/deps/fig2_bank_trace_fine-b321988276585c45: crates/bench/src/bin/fig2_bank_trace_fine.rs

crates/bench/src/bin/fig2_bank_trace_fine.rs:
