/root/repo/target/debug/deps/properties-68e250599fe8f0ca.d: tests/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-68e250599fe8f0ca.rmeta: tests/tests/properties.rs Cargo.toml

tests/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
