/root/repo/target/debug/deps/codelet_wavefront-088257df6819b44d.d: examples/codelet_wavefront.rs

/root/repo/target/debug/deps/codelet_wavefront-088257df6819b44d: examples/codelet_wavefront.rs

examples/codelet_wavefront.rs:
