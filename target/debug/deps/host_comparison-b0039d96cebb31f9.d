/root/repo/target/debug/deps/host_comparison-b0039d96cebb31f9.d: crates/bench/src/bin/host_comparison.rs

/root/repo/target/debug/deps/host_comparison-b0039d96cebb31f9: crates/bench/src/bin/host_comparison.rs

crates/bench/src/bin/host_comparison.rs:
