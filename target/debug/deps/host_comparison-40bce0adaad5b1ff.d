/root/repo/target/debug/deps/host_comparison-40bce0adaad5b1ff.d: crates/bench/src/bin/host_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libhost_comparison-40bce0adaad5b1ff.rmeta: crates/bench/src/bin/host_comparison.rs Cargo.toml

crates/bench/src/bin/host_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
