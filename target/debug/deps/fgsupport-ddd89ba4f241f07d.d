/root/repo/target/debug/deps/fgsupport-ddd89ba4f241f07d.d: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

/root/repo/target/debug/deps/libfgsupport-ddd89ba4f241f07d.rlib: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

/root/repo/target/debug/deps/libfgsupport-ddd89ba4f241f07d.rmeta: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

crates/fgsupport/src/lib.rs:
crates/fgsupport/src/backoff.rs:
crates/fgsupport/src/bench.rs:
crates/fgsupport/src/deque.rs:
crates/fgsupport/src/json.rs:
crates/fgsupport/src/queue.rs:
crates/fgsupport/src/rng.rs:
crates/fgsupport/src/sync.rs:
