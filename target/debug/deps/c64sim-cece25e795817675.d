/root/repo/target/debug/deps/c64sim-cece25e795817675.d: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

/root/repo/target/debug/deps/libc64sim-cece25e795817675.rlib: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

/root/repo/target/debug/deps/libc64sim-cece25e795817675.rmeta: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

crates/c64sim/src/lib.rs:
crates/c64sim/src/address.rs:
crates/c64sim/src/config.rs:
crates/c64sim/src/engine.rs:
crates/c64sim/src/memory.rs:
crates/c64sim/src/sched.rs:
crates/c64sim/src/stats.rs:
crates/c64sim/src/task.rs:
