/root/repo/target/debug/deps/fig6_bank_trace_hash-cf287a346081edfa.d: crates/bench/src/bin/fig6_bank_trace_hash.rs

/root/repo/target/debug/deps/fig6_bank_trace_hash-cf287a346081edfa: crates/bench/src/bin/fig6_bank_trace_hash.rs

crates/bench/src/bin/fig6_bank_trace_hash.rs:
