/root/repo/target/debug/deps/ablation_hash_fn-d7f50af9994ff17d.d: crates/bench/src/bin/ablation_hash_fn.rs

/root/repo/target/debug/deps/ablation_hash_fn-d7f50af9994ff17d: crates/bench/src/bin/ablation_hash_fn.rs

crates/bench/src/bin/ablation_hash_fn.rs:
