/root/repo/target/debug/deps/fig1_bank_trace-bfa930552a706c71.d: crates/bench/src/bin/fig1_bank_trace.rs

/root/repo/target/debug/deps/fig1_bank_trace-bfa930552a706c71: crates/bench/src/bin/fig1_bank_trace.rs

crates/bench/src/bin/fig1_bank_trace.rs:
