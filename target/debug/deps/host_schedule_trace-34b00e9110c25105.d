/root/repo/target/debug/deps/host_schedule_trace-34b00e9110c25105.d: crates/bench/src/bin/host_schedule_trace.rs

/root/repo/target/debug/deps/host_schedule_trace-34b00e9110c25105: crates/bench/src/bin/host_schedule_trace.rs

crates/bench/src/bin/host_schedule_trace.rs:
