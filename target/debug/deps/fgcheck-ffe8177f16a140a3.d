/root/repo/target/debug/deps/fgcheck-ffe8177f16a140a3.d: crates/fgcheck/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfgcheck-ffe8177f16a140a3.rmeta: crates/fgcheck/src/main.rs Cargo.toml

crates/fgcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
