/root/repo/target/debug/deps/c64sim-a674cd682ecf05e8.d: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

/root/repo/target/debug/deps/c64sim-a674cd682ecf05e8: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

crates/c64sim/src/lib.rs:
crates/c64sim/src/address.rs:
crates/c64sim/src/config.rs:
crates/c64sim/src/engine.rs:
crates/c64sim/src/memory.rs:
crates/c64sim/src/sched.rs:
crates/c64sim/src/stats.rs:
crates/c64sim/src/task.rs:
