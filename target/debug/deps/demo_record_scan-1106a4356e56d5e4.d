/root/repo/target/debug/deps/demo_record_scan-1106a4356e56d5e4.d: crates/bench/src/bin/demo_record_scan.rs

/root/repo/target/debug/deps/demo_record_scan-1106a4356e56d5e4: crates/bench/src/bin/demo_record_scan.rs

crates/bench/src/bin/demo_record_scan.rs:
