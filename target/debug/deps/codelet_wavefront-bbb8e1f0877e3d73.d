/root/repo/target/debug/deps/codelet_wavefront-bbb8e1f0877e3d73.d: examples/codelet_wavefront.rs Cargo.toml

/root/repo/target/debug/deps/libcodelet_wavefront-bbb8e1f0877e3d73.rmeta: examples/codelet_wavefront.rs Cargo.toml

examples/codelet_wavefront.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
