/root/repo/target/debug/deps/pools-0aa4dee0f9ae41a7.d: crates/bench/benches/pools.rs

/root/repo/target/debug/deps/pools-0aa4dee0f9ae41a7: crates/bench/benches/pools.rs

crates/bench/benches/pools.rs:
