/root/repo/target/debug/deps/ablation_guided-373ff7f627f934f4.d: crates/bench/src/bin/ablation_guided.rs

/root/repo/target/debug/deps/ablation_guided-373ff7f627f934f4: crates/bench/src/bin/ablation_guided.rs

crates/bench/src/bin/ablation_guided.rs:
