/root/repo/target/debug/deps/fft_repro-4afece662b0402bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfft_repro-4afece662b0402bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfft_repro-4afece662b0402bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
