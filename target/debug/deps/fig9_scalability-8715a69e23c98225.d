/root/repo/target/debug/deps/fig9_scalability-8715a69e23c98225.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/debug/deps/fig9_scalability-8715a69e23c98225: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
