/root/repo/target/debug/deps/runtime_stress-838a750f9b2dd008.d: tests/tests/runtime_stress.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_stress-838a750f9b2dd008.rmeta: tests/tests/runtime_stress.rs Cargo.toml

tests/tests/runtime_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
