/root/repo/target/debug/deps/integration_tests-daaa5b1312859501.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-daaa5b1312859501.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
