/root/repo/target/debug/deps/fig7_codelet_size-5bca67f76b068daa.d: crates/bench/src/bin/fig7_codelet_size.rs

/root/repo/target/debug/deps/fig7_codelet_size-5bca67f76b068daa: crates/bench/src/bin/fig7_codelet_size.rs

crates/bench/src/bin/fig7_codelet_size.rs:
