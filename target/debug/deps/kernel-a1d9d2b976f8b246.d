/root/repo/target/debug/deps/kernel-a1d9d2b976f8b246.d: crates/bench/benches/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libkernel-a1d9d2b976f8b246.rmeta: crates/bench/benches/kernel.rs Cargo.toml

crates/bench/benches/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
