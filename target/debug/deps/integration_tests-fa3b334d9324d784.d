/root/repo/target/debug/deps/integration_tests-fa3b334d9324d784.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-fa3b334d9324d784.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
