/root/repo/target/debug/deps/convolution_filter-727396024b9b1ef6.d: examples/convolution_filter.rs

/root/repo/target/debug/deps/convolution_filter-727396024b9b1ef6: examples/convolution_filter.rs

examples/convolution_filter.rs:
