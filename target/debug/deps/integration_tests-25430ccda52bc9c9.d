/root/repo/target/debug/deps/integration_tests-25430ccda52bc9c9.d: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-25430ccda52bc9c9.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-25430ccda52bc9c9.rmeta: tests/src/lib.rs

tests/src/lib.rs:
