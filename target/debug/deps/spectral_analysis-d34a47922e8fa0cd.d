/root/repo/target/debug/deps/spectral_analysis-d34a47922e8fa0cd.d: examples/spectral_analysis.rs

/root/repo/target/debug/deps/spectral_analysis-d34a47922e8fa0cd: examples/spectral_analysis.rs

examples/spectral_analysis.rs:
