/root/repo/target/debug/deps/twiddle-0a0b8c82292b70f9.d: crates/bench/benches/twiddle.rs Cargo.toml

/root/repo/target/debug/deps/libtwiddle-0a0b8c82292b70f9.rmeta: crates/bench/benches/twiddle.rs Cargo.toml

crates/bench/benches/twiddle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
