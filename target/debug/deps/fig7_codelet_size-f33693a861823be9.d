/root/repo/target/debug/deps/fig7_codelet_size-f33693a861823be9.d: crates/bench/src/bin/fig7_codelet_size.rs

/root/repo/target/debug/deps/fig7_codelet_size-f33693a861823be9: crates/bench/src/bin/fig7_codelet_size.rs

crates/bench/src/bin/fig7_codelet_size.rs:
