/root/repo/target/debug/deps/fgsupport-490077f406cead3e.d: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libfgsupport-490077f406cead3e.rmeta: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs Cargo.toml

crates/fgsupport/src/lib.rs:
crates/fgsupport/src/backoff.rs:
crates/fgsupport/src/bench.rs:
crates/fgsupport/src/deque.rs:
crates/fgsupport/src/json.rs:
crates/fgsupport/src/queue.rs:
crates/fgsupport/src/rng.rs:
crates/fgsupport/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
