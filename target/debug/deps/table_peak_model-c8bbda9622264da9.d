/root/repo/target/debug/deps/table_peak_model-c8bbda9622264da9.d: crates/bench/src/bin/table_peak_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable_peak_model-c8bbda9622264da9.rmeta: crates/bench/src/bin/table_peak_model.rs Cargo.toml

crates/bench/src/bin/table_peak_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
