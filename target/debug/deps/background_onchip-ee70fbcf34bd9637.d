/root/repo/target/debug/deps/background_onchip-ee70fbcf34bd9637.d: crates/bench/src/bin/background_onchip.rs

/root/repo/target/debug/deps/background_onchip-ee70fbcf34bd9637: crates/bench/src/bin/background_onchip.rs

crates/bench/src/bin/background_onchip.rs:
