/root/repo/target/debug/deps/demo_record_scan-af73dec2b584568d.d: crates/bench/src/bin/demo_record_scan.rs

/root/repo/target/debug/deps/demo_record_scan-af73dec2b584568d: crates/bench/src/bin/demo_record_scan.rs

crates/bench/src/bin/demo_record_scan.rs:
