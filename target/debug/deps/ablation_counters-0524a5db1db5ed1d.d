/root/repo/target/debug/deps/ablation_counters-0524a5db1db5ed1d.d: crates/bench/src/bin/ablation_counters.rs

/root/repo/target/debug/deps/ablation_counters-0524a5db1db5ed1d: crates/bench/src/bin/ablation_counters.rs

crates/bench/src/bin/ablation_counters.rs:
