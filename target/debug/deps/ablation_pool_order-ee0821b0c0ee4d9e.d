/root/repo/target/debug/deps/ablation_pool_order-ee0821b0c0ee4d9e.d: crates/bench/src/bin/ablation_pool_order.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pool_order-ee0821b0c0ee4d9e.rmeta: crates/bench/src/bin/ablation_pool_order.rs Cargo.toml

crates/bench/src/bin/ablation_pool_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
