/root/repo/target/debug/deps/ablation_sync_protocol-856a42e5d2467641.d: crates/bench/src/bin/ablation_sync_protocol.rs

/root/repo/target/debug/deps/ablation_sync_protocol-856a42e5d2467641: crates/bench/src/bin/ablation_sync_protocol.rs

crates/bench/src/bin/ablation_sync_protocol.rs:
