/root/repo/target/debug/deps/ablation_hash_fn-2b4dd5e235ced711.d: crates/bench/src/bin/ablation_hash_fn.rs

/root/repo/target/debug/deps/ablation_hash_fn-2b4dd5e235ced711: crates/bench/src/bin/ablation_hash_fn.rs

crates/bench/src/bin/ablation_hash_fn.rs:
