/root/repo/target/debug/deps/fgcheck-ae1d061d41cfa26d.d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

/root/repo/target/debug/deps/fgcheck-ae1d061d41cfa26d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

crates/fgcheck/src/lib.rs:
crates/fgcheck/src/bank.rs:
crates/fgcheck/src/fft.rs:
crates/fgcheck/src/hb.rs:
crates/fgcheck/src/race.rs:
