/root/repo/target/debug/deps/spectrogram-ffbf8c4475cd52a0.d: examples/spectrogram.rs

/root/repo/target/debug/deps/spectrogram-ffbf8c4475cd52a0: examples/spectrogram.rs

examples/spectrogram.rs:
