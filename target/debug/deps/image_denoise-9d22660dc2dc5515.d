/root/repo/target/debug/deps/image_denoise-9d22660dc2dc5515.d: examples/image_denoise.rs

/root/repo/target/debug/deps/image_denoise-9d22660dc2dc5515: examples/image_denoise.rs

examples/image_denoise.rs:
