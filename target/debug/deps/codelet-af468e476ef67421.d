/root/repo/target/debug/deps/codelet-af468e476ef67421.d: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

/root/repo/target/debug/deps/libcodelet-af468e476ef67421.rlib: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

/root/repo/target/debug/deps/libcodelet-af468e476ef67421.rmeta: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

crates/codelet/src/lib.rs:
crates/codelet/src/amm.rs:
crates/codelet/src/counter.rs:
crates/codelet/src/graph.rs:
crates/codelet/src/pool.rs:
crates/codelet/src/runtime.rs:
crates/codelet/src/stats.rs:
crates/codelet/src/trace.rs:
crates/codelet/src/verify.rs:
