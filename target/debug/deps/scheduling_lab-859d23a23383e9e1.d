/root/repo/target/debug/deps/scheduling_lab-859d23a23383e9e1.d: examples/scheduling_lab.rs

/root/repo/target/debug/deps/scheduling_lab-859d23a23383e9e1: examples/scheduling_lab.rs

examples/scheduling_lab.rs:
