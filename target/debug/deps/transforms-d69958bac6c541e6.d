/root/repo/target/debug/deps/transforms-d69958bac6c541e6.d: tests/tests/transforms.rs Cargo.toml

/root/repo/target/debug/deps/libtransforms-d69958bac6c541e6.rmeta: tests/tests/transforms.rs Cargo.toml

tests/tests/transforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
