/root/repo/target/debug/deps/fig6_bank_trace_hash-4f7fa1fc99d5a3a4.d: crates/bench/src/bin/fig6_bank_trace_hash.rs

/root/repo/target/debug/deps/fig6_bank_trace_hash-4f7fa1fc99d5a3a4: crates/bench/src/bin/fig6_bank_trace_hash.rs

crates/bench/src/bin/fig6_bank_trace_hash.rs:
