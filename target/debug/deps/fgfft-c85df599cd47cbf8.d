/root/repo/target/debug/deps/fgfft-c85df599cd47cbf8.d: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libfgfft-c85df599cd47cbf8.rmeta: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs Cargo.toml

crates/fgfft/src/lib.rs:
crates/fgfft/src/api.rs:
crates/fgfft/src/bitrev.rs:
crates/fgfft/src/bluestein.rs:
crates/fgfft/src/complex.rs:
crates/fgfft/src/exec/mod.rs:
crates/fgfft/src/exec/shared.rs:
crates/fgfft/src/fft2d.rs:
crates/fgfft/src/graph.rs:
crates/fgfft/src/kernel.rs:
crates/fgfft/src/model.rs:
crates/fgfft/src/plan.rs:
crates/fgfft/src/reference.rs:
crates/fgfft/src/rfft.rs:
crates/fgfft/src/simwork.rs:
crates/fgfft/src/stft.rs:
crates/fgfft/src/stockham.rs:
crates/fgfft/src/twiddle.rs:
crates/fgfft/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
