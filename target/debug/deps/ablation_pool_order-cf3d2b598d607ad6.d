/root/repo/target/debug/deps/ablation_pool_order-cf3d2b598d607ad6.d: crates/bench/src/bin/ablation_pool_order.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pool_order-cf3d2b598d607ad6.rmeta: crates/bench/src/bin/ablation_pool_order.rs Cargo.toml

crates/bench/src/bin/ablation_pool_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
