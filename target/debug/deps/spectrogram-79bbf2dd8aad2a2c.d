/root/repo/target/debug/deps/spectrogram-79bbf2dd8aad2a2c.d: examples/spectrogram.rs Cargo.toml

/root/repo/target/debug/deps/libspectrogram-79bbf2dd8aad2a2c.rmeta: examples/spectrogram.rs Cargo.toml

examples/spectrogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
