/root/repo/target/debug/deps/host_schedule_trace-54a43e6571cc5235.d: crates/bench/src/bin/host_schedule_trace.rs Cargo.toml

/root/repo/target/debug/deps/libhost_schedule_trace-54a43e6571cc5235.rmeta: crates/bench/src/bin/host_schedule_trace.rs Cargo.toml

crates/bench/src/bin/host_schedule_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
