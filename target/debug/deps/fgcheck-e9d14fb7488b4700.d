/root/repo/target/debug/deps/fgcheck-e9d14fb7488b4700.d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

/root/repo/target/debug/deps/libfgcheck-e9d14fb7488b4700.rlib: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

/root/repo/target/debug/deps/libfgcheck-e9d14fb7488b4700.rmeta: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

crates/fgcheck/src/lib.rs:
crates/fgcheck/src/bank.rs:
crates/fgcheck/src/fft.rs:
crates/fgcheck/src/hb.rs:
crates/fgcheck/src/race.rs:
