/root/repo/target/debug/deps/fig8_perf_vs_size-a12bdd79abb37759.d: crates/bench/src/bin/fig8_perf_vs_size.rs

/root/repo/target/debug/deps/fig8_perf_vs_size-a12bdd79abb37759: crates/bench/src/bin/fig8_perf_vs_size.rs

crates/bench/src/bin/fig8_perf_vs_size.rs:
