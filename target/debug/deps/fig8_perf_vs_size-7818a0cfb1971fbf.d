/root/repo/target/debug/deps/fig8_perf_vs_size-7818a0cfb1971fbf.d: crates/bench/src/bin/fig8_perf_vs_size.rs

/root/repo/target/debug/deps/fig8_perf_vs_size-7818a0cfb1971fbf: crates/bench/src/bin/fig8_perf_vs_size.rs

crates/bench/src/bin/fig8_perf_vs_size.rs:
