/root/repo/target/debug/deps/twiddle-6cd6465d7ffc9798.d: crates/bench/benches/twiddle.rs

/root/repo/target/debug/deps/twiddle-6cd6465d7ffc9798: crates/bench/benches/twiddle.rs

crates/bench/benches/twiddle.rs:
