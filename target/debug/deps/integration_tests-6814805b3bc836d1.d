/root/repo/target/debug/deps/integration_tests-6814805b3bc836d1.d: tests/src/lib.rs

/root/repo/target/debug/deps/integration_tests-6814805b3bc836d1: tests/src/lib.rs

tests/src/lib.rs:
