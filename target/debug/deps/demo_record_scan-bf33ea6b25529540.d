/root/repo/target/debug/deps/demo_record_scan-bf33ea6b25529540.d: crates/bench/src/bin/demo_record_scan.rs

/root/repo/target/debug/deps/demo_record_scan-bf33ea6b25529540: crates/bench/src/bin/demo_record_scan.rs

crates/bench/src/bin/demo_record_scan.rs:
