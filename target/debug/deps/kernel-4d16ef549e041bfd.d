/root/repo/target/debug/deps/kernel-4d16ef549e041bfd.d: crates/bench/benches/kernel.rs

/root/repo/target/debug/deps/kernel-4d16ef549e041bfd: crates/bench/benches/kernel.rs

crates/bench/benches/kernel.rs:
