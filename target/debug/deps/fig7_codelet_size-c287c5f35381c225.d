/root/repo/target/debug/deps/fig7_codelet_size-c287c5f35381c225.d: crates/bench/src/bin/fig7_codelet_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_codelet_size-c287c5f35381c225.rmeta: crates/bench/src/bin/fig7_codelet_size.rs Cargo.toml

crates/bench/src/bin/fig7_codelet_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
