/root/repo/target/debug/deps/diag-fc8e31dcb777f2fb.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-fc8e31dcb777f2fb: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
