/root/repo/target/debug/deps/sim_invariants-a769a1b9ad723265.d: tests/tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-a769a1b9ad723265: tests/tests/sim_invariants.rs

tests/tests/sim_invariants.rs:
