/root/repo/target/debug/deps/image_denoise-ae44627dd33acdf7.d: examples/image_denoise.rs Cargo.toml

/root/repo/target/debug/deps/libimage_denoise-ae44627dd33acdf7.rmeta: examples/image_denoise.rs Cargo.toml

examples/image_denoise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
