/root/repo/target/debug/deps/convolution_filter-87e55dc35d61be74.d: examples/convolution_filter.rs

/root/repo/target/debug/deps/convolution_filter-87e55dc35d61be74: examples/convolution_filter.rs

examples/convolution_filter.rs:
