/root/repo/target/debug/deps/fig2_bank_trace_fine-a7692b82afcdc57a.d: crates/bench/src/bin/fig2_bank_trace_fine.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_bank_trace_fine-a7692b82afcdc57a.rmeta: crates/bench/src/bin/fig2_bank_trace_fine.rs Cargo.toml

crates/bench/src/bin/fig2_bank_trace_fine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
