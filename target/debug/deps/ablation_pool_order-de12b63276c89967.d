/root/repo/target/debug/deps/ablation_pool_order-de12b63276c89967.d: crates/bench/src/bin/ablation_pool_order.rs

/root/repo/target/debug/deps/ablation_pool_order-de12b63276c89967: crates/bench/src/bin/ablation_pool_order.rs

crates/bench/src/bin/ablation_pool_order.rs:
