/root/repo/target/debug/deps/ablation_counters-d96b514875582bdc.d: crates/bench/src/bin/ablation_counters.rs

/root/repo/target/debug/deps/ablation_counters-d96b514875582bdc: crates/bench/src/bin/ablation_counters.rs

crates/bench/src/bin/ablation_counters.rs:
