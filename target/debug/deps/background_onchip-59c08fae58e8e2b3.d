/root/repo/target/debug/deps/background_onchip-59c08fae58e8e2b3.d: crates/bench/src/bin/background_onchip.rs

/root/repo/target/debug/deps/background_onchip-59c08fae58e8e2b3: crates/bench/src/bin/background_onchip.rs

crates/bench/src/bin/background_onchip.rs:
