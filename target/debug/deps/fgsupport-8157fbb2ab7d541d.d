/root/repo/target/debug/deps/fgsupport-8157fbb2ab7d541d.d: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

/root/repo/target/debug/deps/fgsupport-8157fbb2ab7d541d: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

crates/fgsupport/src/lib.rs:
crates/fgsupport/src/backoff.rs:
crates/fgsupport/src/bench.rs:
crates/fgsupport/src/deque.rs:
crates/fgsupport/src/json.rs:
crates/fgsupport/src/queue.rs:
crates/fgsupport/src/rng.rs:
crates/fgsupport/src/sync.rs:
