/root/repo/target/debug/deps/fgcheck-8089b7fc1d21f008.d: tests/tests/fgcheck.rs Cargo.toml

/root/repo/target/debug/deps/libfgcheck-8089b7fc1d21f008.rmeta: tests/tests/fgcheck.rs Cargo.toml

tests/tests/fgcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
