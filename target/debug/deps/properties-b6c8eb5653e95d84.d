/root/repo/target/debug/deps/properties-b6c8eb5653e95d84.d: tests/tests/properties.rs

/root/repo/target/debug/deps/properties-b6c8eb5653e95d84: tests/tests/properties.rs

tests/tests/properties.rs:
