/root/repo/target/debug/deps/ablation_pool_order-3e6ed4f9a3e44fa2.d: crates/bench/src/bin/ablation_pool_order.rs

/root/repo/target/debug/deps/ablation_pool_order-3e6ed4f9a3e44fa2: crates/bench/src/bin/ablation_pool_order.rs

crates/bench/src/bin/ablation_pool_order.rs:
