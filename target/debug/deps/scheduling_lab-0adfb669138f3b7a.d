/root/repo/target/debug/deps/scheduling_lab-0adfb669138f3b7a.d: examples/scheduling_lab.rs

/root/repo/target/debug/deps/scheduling_lab-0adfb669138f3b7a: examples/scheduling_lab.rs

examples/scheduling_lab.rs:
