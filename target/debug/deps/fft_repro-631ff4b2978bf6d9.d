/root/repo/target/debug/deps/fft_repro-631ff4b2978bf6d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fft_repro-631ff4b2978bf6d9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
