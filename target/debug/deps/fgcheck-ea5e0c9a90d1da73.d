/root/repo/target/debug/deps/fgcheck-ea5e0c9a90d1da73.d: crates/fgcheck/src/main.rs

/root/repo/target/debug/deps/fgcheck-ea5e0c9a90d1da73: crates/fgcheck/src/main.rs

crates/fgcheck/src/main.rs:
