/root/repo/target/debug/deps/bitrev-98e7f5ebaebb46f7.d: crates/bench/benches/bitrev.rs Cargo.toml

/root/repo/target/debug/deps/libbitrev-98e7f5ebaebb46f7.rmeta: crates/bench/benches/bitrev.rs Cargo.toml

crates/bench/benches/bitrev.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
