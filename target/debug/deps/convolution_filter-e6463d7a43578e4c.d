/root/repo/target/debug/deps/convolution_filter-e6463d7a43578e4c.d: examples/convolution_filter.rs Cargo.toml

/root/repo/target/debug/deps/libconvolution_filter-e6463d7a43578e4c.rmeta: examples/convolution_filter.rs Cargo.toml

examples/convolution_filter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
