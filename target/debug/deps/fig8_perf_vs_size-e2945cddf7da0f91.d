/root/repo/target/debug/deps/fig8_perf_vs_size-e2945cddf7da0f91.d: crates/bench/src/bin/fig8_perf_vs_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_perf_vs_size-e2945cddf7da0f91.rmeta: crates/bench/src/bin/fig8_perf_vs_size.rs Cargo.toml

crates/bench/src/bin/fig8_perf_vs_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
