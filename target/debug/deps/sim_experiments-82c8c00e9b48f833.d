/root/repo/target/debug/deps/sim_experiments-82c8c00e9b48f833.d: tests/tests/sim_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libsim_experiments-82c8c00e9b48f833.rmeta: tests/tests/sim_experiments.rs Cargo.toml

tests/tests/sim_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
