/root/repo/target/debug/deps/fig7_codelet_size-5fe81d11833ff5dc.d: crates/bench/src/bin/fig7_codelet_size.rs

/root/repo/target/debug/deps/fig7_codelet_size-5fe81d11833ff5dc: crates/bench/src/bin/fig7_codelet_size.rs

crates/bench/src/bin/fig7_codelet_size.rs:
