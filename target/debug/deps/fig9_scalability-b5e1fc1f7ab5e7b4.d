/root/repo/target/debug/deps/fig9_scalability-b5e1fc1f7ab5e7b4.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/debug/deps/fig9_scalability-b5e1fc1f7ab5e7b4: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
