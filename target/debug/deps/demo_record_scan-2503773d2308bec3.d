/root/repo/target/debug/deps/demo_record_scan-2503773d2308bec3.d: crates/bench/src/bin/demo_record_scan.rs Cargo.toml

/root/repo/target/debug/deps/libdemo_record_scan-2503773d2308bec3.rmeta: crates/bench/src/bin/demo_record_scan.rs Cargo.toml

crates/bench/src/bin/demo_record_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
