/root/repo/target/debug/deps/codelet_wavefront-c431ac44c5c2aa3c.d: examples/codelet_wavefront.rs

/root/repo/target/debug/deps/codelet_wavefront-c431ac44c5c2aa3c: examples/codelet_wavefront.rs

examples/codelet_wavefront.rs:
