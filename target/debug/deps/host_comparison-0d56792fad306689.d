/root/repo/target/debug/deps/host_comparison-0d56792fad306689.d: crates/bench/src/bin/host_comparison.rs

/root/repo/target/debug/deps/host_comparison-0d56792fad306689: crates/bench/src/bin/host_comparison.rs

crates/bench/src/bin/host_comparison.rs:
