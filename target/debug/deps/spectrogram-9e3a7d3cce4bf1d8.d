/root/repo/target/debug/deps/spectrogram-9e3a7d3cce4bf1d8.d: examples/spectrogram.rs Cargo.toml

/root/repo/target/debug/deps/libspectrogram-9e3a7d3cce4bf1d8.rmeta: examples/spectrogram.rs Cargo.toml

examples/spectrogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
