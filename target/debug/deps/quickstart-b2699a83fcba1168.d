/root/repo/target/debug/deps/quickstart-b2699a83fcba1168.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-b2699a83fcba1168: examples/quickstart.rs

examples/quickstart.rs:
