/root/repo/target/debug/deps/ablation_guided-381b2d4f1552e030.d: crates/bench/src/bin/ablation_guided.rs Cargo.toml

/root/repo/target/debug/deps/libablation_guided-381b2d4f1552e030.rmeta: crates/bench/src/bin/ablation_guided.rs Cargo.toml

crates/bench/src/bin/ablation_guided.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
