/root/repo/target/debug/deps/table_peak_model-062c1ed5dafaa0fb.d: crates/bench/src/bin/table_peak_model.rs

/root/repo/target/debug/deps/table_peak_model-062c1ed5dafaa0fb: crates/bench/src/bin/table_peak_model.rs

crates/bench/src/bin/table_peak_model.rs:
