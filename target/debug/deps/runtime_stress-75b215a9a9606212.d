/root/repo/target/debug/deps/runtime_stress-75b215a9a9606212.d: tests/tests/runtime_stress.rs

/root/repo/target/debug/deps/runtime_stress-75b215a9a9606212: tests/tests/runtime_stress.rs

tests/tests/runtime_stress.rs:
