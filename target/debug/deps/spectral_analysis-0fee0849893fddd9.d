/root/repo/target/debug/deps/spectral_analysis-0fee0849893fddd9.d: examples/spectral_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libspectral_analysis-0fee0849893fddd9.rmeta: examples/spectral_analysis.rs Cargo.toml

examples/spectral_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
