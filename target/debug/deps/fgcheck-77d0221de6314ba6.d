/root/repo/target/debug/deps/fgcheck-77d0221de6314ba6.d: crates/fgcheck/src/main.rs

/root/repo/target/debug/deps/fgcheck-77d0221de6314ba6: crates/fgcheck/src/main.rs

crates/fgcheck/src/main.rs:
