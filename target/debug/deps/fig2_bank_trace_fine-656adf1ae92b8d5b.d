/root/repo/target/debug/deps/fig2_bank_trace_fine-656adf1ae92b8d5b.d: crates/bench/src/bin/fig2_bank_trace_fine.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_bank_trace_fine-656adf1ae92b8d5b.rmeta: crates/bench/src/bin/fig2_bank_trace_fine.rs Cargo.toml

crates/bench/src/bin/fig2_bank_trace_fine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
