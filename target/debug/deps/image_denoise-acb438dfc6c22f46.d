/root/repo/target/debug/deps/image_denoise-acb438dfc6c22f46.d: examples/image_denoise.rs

/root/repo/target/debug/deps/image_denoise-acb438dfc6c22f46: examples/image_denoise.rs

examples/image_denoise.rs:
