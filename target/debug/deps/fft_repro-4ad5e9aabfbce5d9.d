/root/repo/target/debug/deps/fft_repro-4ad5e9aabfbce5d9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfft_repro-4ad5e9aabfbce5d9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
