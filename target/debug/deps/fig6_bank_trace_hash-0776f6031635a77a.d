/root/repo/target/debug/deps/fig6_bank_trace_hash-0776f6031635a77a.d: crates/bench/src/bin/fig6_bank_trace_hash.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_bank_trace_hash-0776f6031635a77a.rmeta: crates/bench/src/bin/fig6_bank_trace_hash.rs Cargo.toml

crates/bench/src/bin/fig6_bank_trace_hash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
