/root/repo/target/debug/deps/ablation_hash_fn-4e88b08b24dc3959.d: crates/bench/src/bin/ablation_hash_fn.rs

/root/repo/target/debug/deps/ablation_hash_fn-4e88b08b24dc3959: crates/bench/src/bin/ablation_hash_fn.rs

crates/bench/src/bin/ablation_hash_fn.rs:
