/root/repo/target/debug/deps/correctness-3d8f7a47a43ca30e.d: tests/tests/correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness-3d8f7a47a43ca30e.rmeta: tests/tests/correctness.rs Cargo.toml

tests/tests/correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
