/root/repo/target/debug/deps/fig1_bank_trace-1da5b850d43d8478.d: crates/bench/src/bin/fig1_bank_trace.rs

/root/repo/target/debug/deps/fig1_bank_trace-1da5b850d43d8478: crates/bench/src/bin/fig1_bank_trace.rs

crates/bench/src/bin/fig1_bank_trace.rs:
