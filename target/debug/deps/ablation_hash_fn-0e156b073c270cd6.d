/root/repo/target/debug/deps/ablation_hash_fn-0e156b073c270cd6.d: crates/bench/src/bin/ablation_hash_fn.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hash_fn-0e156b073c270cd6.rmeta: crates/bench/src/bin/ablation_hash_fn.rs Cargo.toml

crates/bench/src/bin/ablation_hash_fn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
