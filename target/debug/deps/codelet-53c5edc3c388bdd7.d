/root/repo/target/debug/deps/codelet-53c5edc3c388bdd7.d: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

/root/repo/target/debug/deps/codelet-53c5edc3c388bdd7: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

crates/codelet/src/lib.rs:
crates/codelet/src/amm.rs:
crates/codelet/src/counter.rs:
crates/codelet/src/graph.rs:
crates/codelet/src/pool.rs:
crates/codelet/src/runtime.rs:
crates/codelet/src/stats.rs:
crates/codelet/src/trace.rs:
crates/codelet/src/verify.rs:
