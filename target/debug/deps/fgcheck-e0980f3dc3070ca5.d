/root/repo/target/debug/deps/fgcheck-e0980f3dc3070ca5.d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs Cargo.toml

/root/repo/target/debug/deps/libfgcheck-e0980f3dc3070ca5.rmeta: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs Cargo.toml

crates/fgcheck/src/lib.rs:
crates/fgcheck/src/bank.rs:
crates/fgcheck/src/fft.rs:
crates/fgcheck/src/hb.rs:
crates/fgcheck/src/race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
