/root/repo/target/release/deps/fgcheck-3961a567a683d2a3.d: tests/tests/fgcheck.rs

/root/repo/target/release/deps/fgcheck-3961a567a683d2a3: tests/tests/fgcheck.rs

tests/tests/fgcheck.rs:
