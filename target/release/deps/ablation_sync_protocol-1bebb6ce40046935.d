/root/repo/target/release/deps/ablation_sync_protocol-1bebb6ce40046935.d: crates/bench/src/bin/ablation_sync_protocol.rs

/root/repo/target/release/deps/ablation_sync_protocol-1bebb6ce40046935: crates/bench/src/bin/ablation_sync_protocol.rs

crates/bench/src/bin/ablation_sync_protocol.rs:
