/root/repo/target/release/deps/fgcheck-eadf730236ced842.d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

/root/repo/target/release/deps/libfgcheck-eadf730236ced842.rlib: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

/root/repo/target/release/deps/libfgcheck-eadf730236ced842.rmeta: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs

crates/fgcheck/src/lib.rs:
crates/fgcheck/src/bank.rs:
crates/fgcheck/src/fft.rs:
crates/fgcheck/src/hb.rs:
crates/fgcheck/src/race.rs:
