/root/repo/target/release/deps/fig6_bank_trace_hash-ede9c52ef7b89688.d: crates/bench/src/bin/fig6_bank_trace_hash.rs

/root/repo/target/release/deps/fig6_bank_trace_hash-ede9c52ef7b89688: crates/bench/src/bin/fig6_bank_trace_hash.rs

crates/bench/src/bin/fig6_bank_trace_hash.rs:
