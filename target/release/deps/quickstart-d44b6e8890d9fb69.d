/root/repo/target/release/deps/quickstart-d44b6e8890d9fb69.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-d44b6e8890d9fb69: examples/quickstart.rs

examples/quickstart.rs:
