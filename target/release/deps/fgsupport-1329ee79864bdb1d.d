/root/repo/target/release/deps/fgsupport-1329ee79864bdb1d.d: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

/root/repo/target/release/deps/libfgsupport-1329ee79864bdb1d.rlib: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

/root/repo/target/release/deps/libfgsupport-1329ee79864bdb1d.rmeta: crates/fgsupport/src/lib.rs crates/fgsupport/src/backoff.rs crates/fgsupport/src/bench.rs crates/fgsupport/src/deque.rs crates/fgsupport/src/json.rs crates/fgsupport/src/queue.rs crates/fgsupport/src/rng.rs crates/fgsupport/src/sync.rs

crates/fgsupport/src/lib.rs:
crates/fgsupport/src/backoff.rs:
crates/fgsupport/src/bench.rs:
crates/fgsupport/src/deque.rs:
crates/fgsupport/src/json.rs:
crates/fgsupport/src/queue.rs:
crates/fgsupport/src/rng.rs:
crates/fgsupport/src/sync.rs:
