/root/repo/target/release/deps/ablation_guided-24bf95fced610c6f.d: crates/bench/src/bin/ablation_guided.rs

/root/repo/target/release/deps/ablation_guided-24bf95fced610c6f: crates/bench/src/bin/ablation_guided.rs

crates/bench/src/bin/ablation_guided.rs:
