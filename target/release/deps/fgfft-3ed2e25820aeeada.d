/root/repo/target/release/deps/fgfft-3ed2e25820aeeada.d: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs Cargo.toml

/root/repo/target/release/deps/libfgfft-3ed2e25820aeeada.rmeta: crates/fgfft/src/lib.rs crates/fgfft/src/api.rs crates/fgfft/src/bitrev.rs crates/fgfft/src/bluestein.rs crates/fgfft/src/complex.rs crates/fgfft/src/exec/mod.rs crates/fgfft/src/exec/shared.rs crates/fgfft/src/fft2d.rs crates/fgfft/src/graph.rs crates/fgfft/src/kernel.rs crates/fgfft/src/model.rs crates/fgfft/src/plan.rs crates/fgfft/src/reference.rs crates/fgfft/src/rfft.rs crates/fgfft/src/simwork.rs crates/fgfft/src/stft.rs crates/fgfft/src/stockham.rs crates/fgfft/src/twiddle.rs crates/fgfft/src/window.rs Cargo.toml

crates/fgfft/src/lib.rs:
crates/fgfft/src/api.rs:
crates/fgfft/src/bitrev.rs:
crates/fgfft/src/bluestein.rs:
crates/fgfft/src/complex.rs:
crates/fgfft/src/exec/mod.rs:
crates/fgfft/src/exec/shared.rs:
crates/fgfft/src/fft2d.rs:
crates/fgfft/src/graph.rs:
crates/fgfft/src/kernel.rs:
crates/fgfft/src/model.rs:
crates/fgfft/src/plan.rs:
crates/fgfft/src/reference.rs:
crates/fgfft/src/rfft.rs:
crates/fgfft/src/simwork.rs:
crates/fgfft/src/stft.rs:
crates/fgfft/src/stockham.rs:
crates/fgfft/src/twiddle.rs:
crates/fgfft/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
