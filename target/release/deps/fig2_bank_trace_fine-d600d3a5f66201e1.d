/root/repo/target/release/deps/fig2_bank_trace_fine-d600d3a5f66201e1.d: crates/bench/src/bin/fig2_bank_trace_fine.rs

/root/repo/target/release/deps/fig2_bank_trace_fine-d600d3a5f66201e1: crates/bench/src/bin/fig2_bank_trace_fine.rs

crates/bench/src/bin/fig2_bank_trace_fine.rs:
