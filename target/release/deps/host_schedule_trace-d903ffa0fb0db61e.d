/root/repo/target/release/deps/host_schedule_trace-d903ffa0fb0db61e.d: crates/bench/src/bin/host_schedule_trace.rs

/root/repo/target/release/deps/host_schedule_trace-d903ffa0fb0db61e: crates/bench/src/bin/host_schedule_trace.rs

crates/bench/src/bin/host_schedule_trace.rs:
