/root/repo/target/release/deps/ablation_pool_order-02407982e788d4bc.d: crates/bench/src/bin/ablation_pool_order.rs

/root/repo/target/release/deps/ablation_pool_order-02407982e788d4bc: crates/bench/src/bin/ablation_pool_order.rs

crates/bench/src/bin/ablation_pool_order.rs:
