/root/repo/target/release/deps/fig1_bank_trace-bee5c85b985a9e8f.d: crates/bench/src/bin/fig1_bank_trace.rs

/root/repo/target/release/deps/fig1_bank_trace-bee5c85b985a9e8f: crates/bench/src/bin/fig1_bank_trace.rs

crates/bench/src/bin/fig1_bank_trace.rs:
