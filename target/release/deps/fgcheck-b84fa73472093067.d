/root/repo/target/release/deps/fgcheck-b84fa73472093067.d: crates/fgcheck/src/main.rs Cargo.toml

/root/repo/target/release/deps/libfgcheck-b84fa73472093067.rmeta: crates/fgcheck/src/main.rs Cargo.toml

crates/fgcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
