/root/repo/target/release/deps/codelet-826e1c42a47f56c5.d: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

/root/repo/target/release/deps/libcodelet-826e1c42a47f56c5.rlib: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

/root/repo/target/release/deps/libcodelet-826e1c42a47f56c5.rmeta: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs

crates/codelet/src/lib.rs:
crates/codelet/src/amm.rs:
crates/codelet/src/counter.rs:
crates/codelet/src/graph.rs:
crates/codelet/src/pool.rs:
crates/codelet/src/runtime.rs:
crates/codelet/src/stats.rs:
crates/codelet/src/trace.rs:
crates/codelet/src/verify.rs:
