/root/repo/target/release/deps/background_onchip-379c65a7c0b04ef2.d: crates/bench/src/bin/background_onchip.rs

/root/repo/target/release/deps/background_onchip-379c65a7c0b04ef2: crates/bench/src/bin/background_onchip.rs

crates/bench/src/bin/background_onchip.rs:
