/root/repo/target/release/deps/convolution_filter-432e7b5effe1bb12.d: examples/convolution_filter.rs

/root/repo/target/release/deps/convolution_filter-432e7b5effe1bb12: examples/convolution_filter.rs

examples/convolution_filter.rs:
