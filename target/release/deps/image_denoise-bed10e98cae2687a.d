/root/repo/target/release/deps/image_denoise-bed10e98cae2687a.d: examples/image_denoise.rs

/root/repo/target/release/deps/image_denoise-bed10e98cae2687a: examples/image_denoise.rs

examples/image_denoise.rs:
