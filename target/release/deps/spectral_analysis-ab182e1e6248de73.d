/root/repo/target/release/deps/spectral_analysis-ab182e1e6248de73.d: examples/spectral_analysis.rs

/root/repo/target/release/deps/spectral_analysis-ab182e1e6248de73: examples/spectral_analysis.rs

examples/spectral_analysis.rs:
