/root/repo/target/release/deps/fgcheck-8fc8690cfb1325e1.d: crates/fgcheck/src/main.rs

/root/repo/target/release/deps/fgcheck-8fc8690cfb1325e1: crates/fgcheck/src/main.rs

crates/fgcheck/src/main.rs:
