/root/repo/target/release/deps/c64sim-7ee674dd75c1f6cc.d: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs Cargo.toml

/root/repo/target/release/deps/libc64sim-7ee674dd75c1f6cc.rmeta: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs Cargo.toml

crates/c64sim/src/lib.rs:
crates/c64sim/src/address.rs:
crates/c64sim/src/config.rs:
crates/c64sim/src/engine.rs:
crates/c64sim/src/memory.rs:
crates/c64sim/src/sched.rs:
crates/c64sim/src/stats.rs:
crates/c64sim/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
