/root/repo/target/release/deps/host_comparison-8aa14737de94b030.d: crates/bench/src/bin/host_comparison.rs

/root/repo/target/release/deps/host_comparison-8aa14737de94b030: crates/bench/src/bin/host_comparison.rs

crates/bench/src/bin/host_comparison.rs:
