/root/repo/target/release/deps/fig8_perf_vs_size-6d1e9ea0fad854f5.d: crates/bench/src/bin/fig8_perf_vs_size.rs

/root/repo/target/release/deps/fig8_perf_vs_size-6d1e9ea0fad854f5: crates/bench/src/bin/fig8_perf_vs_size.rs

crates/bench/src/bin/fig8_perf_vs_size.rs:
