/root/repo/target/release/deps/table_peak_model-8f89394915ccc74d.d: crates/bench/src/bin/table_peak_model.rs

/root/repo/target/release/deps/table_peak_model-8f89394915ccc74d: crates/bench/src/bin/table_peak_model.rs

crates/bench/src/bin/table_peak_model.rs:
