/root/repo/target/release/deps/diag-86d2084a53b9853f.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-86d2084a53b9853f: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
