/root/repo/target/release/deps/fft_repro-48ff5c9ca3fcc5cc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfft_repro-48ff5c9ca3fcc5cc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfft_repro-48ff5c9ca3fcc5cc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
