/root/repo/target/release/deps/spectrogram-72719806eeeab3b3.d: examples/spectrogram.rs

/root/repo/target/release/deps/spectrogram-72719806eeeab3b3: examples/spectrogram.rs

examples/spectrogram.rs:
