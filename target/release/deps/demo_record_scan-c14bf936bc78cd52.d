/root/repo/target/release/deps/demo_record_scan-c14bf936bc78cd52.d: crates/bench/src/bin/demo_record_scan.rs

/root/repo/target/release/deps/demo_record_scan-c14bf936bc78cd52: crates/bench/src/bin/demo_record_scan.rs

crates/bench/src/bin/demo_record_scan.rs:
