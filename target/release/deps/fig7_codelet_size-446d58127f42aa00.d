/root/repo/target/release/deps/fig7_codelet_size-446d58127f42aa00.d: crates/bench/src/bin/fig7_codelet_size.rs

/root/repo/target/release/deps/fig7_codelet_size-446d58127f42aa00: crates/bench/src/bin/fig7_codelet_size.rs

crates/bench/src/bin/fig7_codelet_size.rs:
