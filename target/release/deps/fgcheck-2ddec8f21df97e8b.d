/root/repo/target/release/deps/fgcheck-2ddec8f21df97e8b.d: crates/fgcheck/src/main.rs Cargo.toml

/root/repo/target/release/deps/libfgcheck-2ddec8f21df97e8b.rmeta: crates/fgcheck/src/main.rs Cargo.toml

crates/fgcheck/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
