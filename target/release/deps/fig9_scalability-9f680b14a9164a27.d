/root/repo/target/release/deps/fig9_scalability-9f680b14a9164a27.d: crates/bench/src/bin/fig9_scalability.rs

/root/repo/target/release/deps/fig9_scalability-9f680b14a9164a27: crates/bench/src/bin/fig9_scalability.rs

crates/bench/src/bin/fig9_scalability.rs:
