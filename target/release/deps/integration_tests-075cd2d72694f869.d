/root/repo/target/release/deps/integration_tests-075cd2d72694f869.d: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-075cd2d72694f869.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-075cd2d72694f869.rmeta: tests/src/lib.rs

tests/src/lib.rs:
