/root/repo/target/release/deps/codelet-d63e04d74c752afb.d: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs Cargo.toml

/root/repo/target/release/deps/libcodelet-d63e04d74c752afb.rmeta: crates/codelet/src/lib.rs crates/codelet/src/amm.rs crates/codelet/src/counter.rs crates/codelet/src/graph.rs crates/codelet/src/pool.rs crates/codelet/src/runtime.rs crates/codelet/src/stats.rs crates/codelet/src/trace.rs crates/codelet/src/verify.rs Cargo.toml

crates/codelet/src/lib.rs:
crates/codelet/src/amm.rs:
crates/codelet/src/counter.rs:
crates/codelet/src/graph.rs:
crates/codelet/src/pool.rs:
crates/codelet/src/runtime.rs:
crates/codelet/src/stats.rs:
crates/codelet/src/trace.rs:
crates/codelet/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
