/root/repo/target/release/deps/diag_static_bank-cc4e7b9daea05b5a.d: crates/bench/src/bin/diag_static_bank.rs

/root/repo/target/release/deps/diag_static_bank-cc4e7b9daea05b5a: crates/bench/src/bin/diag_static_bank.rs

crates/bench/src/bin/diag_static_bank.rs:
