/root/repo/target/release/deps/c64sim-266733888c3064aa.d: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

/root/repo/target/release/deps/libc64sim-266733888c3064aa.rlib: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

/root/repo/target/release/deps/libc64sim-266733888c3064aa.rmeta: crates/c64sim/src/lib.rs crates/c64sim/src/address.rs crates/c64sim/src/config.rs crates/c64sim/src/engine.rs crates/c64sim/src/memory.rs crates/c64sim/src/sched.rs crates/c64sim/src/stats.rs crates/c64sim/src/task.rs

crates/c64sim/src/lib.rs:
crates/c64sim/src/address.rs:
crates/c64sim/src/config.rs:
crates/c64sim/src/engine.rs:
crates/c64sim/src/memory.rs:
crates/c64sim/src/sched.rs:
crates/c64sim/src/stats.rs:
crates/c64sim/src/task.rs:
