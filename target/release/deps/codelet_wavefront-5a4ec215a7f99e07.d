/root/repo/target/release/deps/codelet_wavefront-5a4ec215a7f99e07.d: examples/codelet_wavefront.rs

/root/repo/target/release/deps/codelet_wavefront-5a4ec215a7f99e07: examples/codelet_wavefront.rs

examples/codelet_wavefront.rs:
