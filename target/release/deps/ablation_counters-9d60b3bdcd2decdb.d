/root/repo/target/release/deps/ablation_counters-9d60b3bdcd2decdb.d: crates/bench/src/bin/ablation_counters.rs

/root/repo/target/release/deps/ablation_counters-9d60b3bdcd2decdb: crates/bench/src/bin/ablation_counters.rs

crates/bench/src/bin/ablation_counters.rs:
