/root/repo/target/release/deps/fgcheck-e2614b623a878f9c.d: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs Cargo.toml

/root/repo/target/release/deps/libfgcheck-e2614b623a878f9c.rmeta: crates/fgcheck/src/lib.rs crates/fgcheck/src/bank.rs crates/fgcheck/src/fft.rs crates/fgcheck/src/hb.rs crates/fgcheck/src/race.rs Cargo.toml

crates/fgcheck/src/lib.rs:
crates/fgcheck/src/bank.rs:
crates/fgcheck/src/fft.rs:
crates/fgcheck/src/hb.rs:
crates/fgcheck/src/race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
