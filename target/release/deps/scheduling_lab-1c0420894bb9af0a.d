/root/repo/target/release/deps/scheduling_lab-1c0420894bb9af0a.d: examples/scheduling_lab.rs

/root/repo/target/release/deps/scheduling_lab-1c0420894bb9af0a: examples/scheduling_lab.rs

examples/scheduling_lab.rs:
