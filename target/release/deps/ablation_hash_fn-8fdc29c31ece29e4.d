/root/repo/target/release/deps/ablation_hash_fn-8fdc29c31ece29e4.d: crates/bench/src/bin/ablation_hash_fn.rs

/root/repo/target/release/deps/ablation_hash_fn-8fdc29c31ece29e4: crates/bench/src/bin/ablation_hash_fn.rs

crates/bench/src/bin/ablation_hash_fn.rs:
