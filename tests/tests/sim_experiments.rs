//! Integration tests of the simulated experiments: each headline claim of
//! the paper's evaluation, asserted at reduced scale so the suite stays
//! fast. The full-scale sweeps live in the `fft-repro` harness binaries.

use c64sim::{ChipConfig, SimOptions};
use fgfft::{model, run_sim, run_sim_guided, FftPlan, GuidedOptions, SeedOrder, SimVersion};

fn opts() -> SimOptions {
    SimOptions {
        trace_window: 30_000,
    }
}

fn chip() -> ChipConfig {
    ChipConfig::cyclops64()
}

/// Fig. 1: the coarse schedule's early windows show a ~3x bank-0 skew and
/// contention persists for the majority of the run.
#[test]
fn fig1_coarse_bank_skew() {
    let r = run_sim(FftPlan::new(16, 6), SimVersion::Coarse, &chip(), &opts());
    let first = &r.trace.counts[0];
    let others = first[1..].iter().sum::<u64>() as f64 / 3.0;
    let ratio = first[0] as f64 / others;
    assert!(
        (2.0..4.5).contains(&ratio),
        "first-window bank-0 ratio {ratio} outside the paper's ~3x"
    );
    assert!(
        r.trace.contended_fraction(1.5) > 0.5,
        "contention should persist through most of the run"
    );
    // The final windows are balanced (the paper's last ~1/3).
    let w = r.trace.counts.len();
    let tail = &r.trace.counts[w * 9 / 10];
    let tail_sum: u64 = tail.iter().sum();
    if tail_sum > 1000 {
        let mean = tail_sum as f64 / 4.0;
        assert!(
            *tail.iter().max().unwrap() as f64 / mean < 1.5,
            "tail windows should be balanced: {tail:?}"
        );
    }
}

/// Fig. 2: the guided schedule raises banks 1-3 traffic during the
/// contended middle of the run relative to coarse.
#[test]
fn fig2_guided_overlaps_balanced_traffic() {
    let plan = FftPlan::new(16, 6);
    let guided = run_sim(plan, SimVersion::FineGuided, &chip(), &opts());
    let coarse = run_sim(plan, SimVersion::Coarse, &chip(), &opts());
    let mid_others = |r: &c64sim::SimReport| {
        let w = r.trace.counts.len();
        r.trace.counts[w / 3..2 * w / 3]
            .iter()
            .map(|c| c[1..].iter().sum::<u64>())
            .sum::<u64>() as f64
            / (w / 3).max(1) as f64
    };
    assert!(
        mid_others(&guided) > 1.1 * mid_others(&coarse),
        "guided {} vs coarse {}",
        mid_others(&guided),
        mid_others(&coarse)
    );
}

/// Fig. 6: the hashed twiddle layout balances the whole run.
#[test]
fn fig6_hash_balances_banks() {
    let r = run_sim(
        FftPlan::new(16, 6),
        SimVersion::FineHash(SeedOrder::Natural),
        &chip(),
        &opts(),
    );
    assert!(r.bank_imbalance() < 1.1, "imbalance {}", r.bank_imbalance());
}

/// Fig. 7: 64-point codelets beat both smaller and oversized codelets.
#[test]
fn fig7_codelet_size_sweet_spot() {
    let chip = chip();
    let gflops = |radix_log2: u32| {
        run_sim(
            FftPlan::new(15, radix_log2),
            SimVersion::Fine(SeedOrder::Natural),
            &chip,
            &opts(),
        )
        .gflops
    };
    let g8 = gflops(3);
    let g32 = gflops(5);
    let g64 = gflops(6);
    let g128 = gflops(7);
    assert!(
        g64 > g32 && g32 > g8,
        "larger codelets reduce traffic: {g8} {g32} {g64}"
    );
    assert!(g64 > g128, "128-pt spills must lose: {g64} vs {g128}");
}

/// Fig. 8/9 orderings that survive the bank-0 conservation bound (see
/// EXPERIMENTS.md): the balanced fine version shows the paper's large gain
/// over coarse; guided beats coarse at the paper's headline configuration;
/// the worst fine order does not beat coarse.
#[test]
fn fig8_fig9_version_ordering() {
    let plan = FftPlan::new(15, 6);
    let chip = chip();
    let coarse = run_sim(plan, SimVersion::Coarse, &chip, &opts()).gflops;
    let guided = run_sim(plan, SimVersion::FineGuided, &chip, &opts()).gflops;
    let hash = run_sim(
        plan,
        SimVersion::FineHash(SeedOrder::Natural),
        &chip,
        &opts(),
    )
    .gflops;
    let fine: Vec<f64> = [
        SeedOrder::Natural,
        SeedOrder::Reversed,
        SeedOrder::EvenOdd,
        SeedOrder::Random(7),
    ]
    .into_iter()
    .map(|o| run_sim(plan, SimVersion::Fine(o), &chip, &opts()).gflops)
    .collect();
    let worst = fine.iter().copied().fold(f64::INFINITY, f64::min);

    assert!(guided > coarse, "guided {guided} <= coarse {coarse}");
    assert!(hash > 1.3 * coarse, "hash {hash} vs coarse {coarse}");
    assert!(
        worst < 1.02 * coarse,
        "fine worst {worst} should not beat coarse {coarse}"
    );
}

/// Scalability: more thread units help every version until the memory
/// system saturates.
#[test]
fn fig9_scaling_with_thread_units() {
    let plan = FftPlan::new(15, 6);
    for version in [SimVersion::Coarse, SimVersion::FineHash(SeedOrder::Natural)] {
        let g20 = run_sim(plan, version, &chip().with_thread_units(20), &opts()).gflops;
        let g80 = run_sim(plan, version, &chip().with_thread_units(80), &opts()).gflops;
        let g156 = run_sim(plan, version, &chip().with_thread_units(156), &opts()).gflops;
        assert!(g80 > 1.5 * g20, "{}: 20→80 TUs {g20}→{g80}", version.name());
        assert!(
            g156 >= g80 * 0.95,
            "{}: 80→156 TUs regressed",
            version.name()
        );
    }
}

/// Eq. (4): no simulated configuration exceeds the analytic DRAM bound.
#[test]
fn peak_model_is_an_upper_bound() {
    let chip = chip();
    for n_log2 in [13u32, 15] {
        for radix_log2 in [4u32, 6] {
            let plan = FftPlan::new(n_log2, radix_log2);
            let bound = model::bandwidth_bound_gflops(&plan, &chip);
            for version in [
                SimVersion::Coarse,
                SimVersion::FineHash(SeedOrder::Natural),
                SimVersion::FineGuided,
            ] {
                let g = run_sim(plan, version, &chip, &opts()).gflops;
                assert!(
                    g <= bound * 1.001,
                    "{} at n=2^{n_log2} radix 2^{radix_log2}: {g} exceeds bound {bound}",
                    version.name()
                );
            }
        }
    }
}

/// The guided ablation knobs all complete and stay within the bound.
#[test]
fn guided_knobs_all_run() {
    let plan = FftPlan::new(15, 6);
    let chip = chip();
    let bound = model::bandwidth_bound_gflops(&plan, &chip);
    for rotated in [true, false] {
        for last_early in 0..plan.stages() - 1 {
            let r = run_sim_guided(
                plan,
                &chip,
                &opts(),
                &GuidedOptions {
                    bank_rotated_seeds: rotated,
                    discipline: c64sim::SimPoolDiscipline::Lifo,
                    last_early: Some(last_early),
                },
            );
            assert_eq!(r.tasks as usize, plan.total_codelets());
            assert!(r.gflops <= bound * 1.001);
        }
    }
}

/// Simulated runs are bit-deterministic across repetitions.
#[test]
fn simulation_reports_are_reproducible() {
    let plan = FftPlan::new(14, 6);
    let chip = chip();
    for version in [
        SimVersion::Coarse,
        SimVersion::Fine(SeedOrder::Random(9)),
        SimVersion::FineGuided,
    ] {
        let a = run_sim(plan, version, &chip, &opts());
        let b = run_sim(plan, version, &chip, &opts());
        assert_eq!(a.makespan_cycles, b.makespan_cycles, "{}", version.name());
        assert_eq!(a.bank_accesses, b.bank_accesses);
        assert_eq!(a.trace.counts, b.trace.counts);
    }
}

/// Total DRAM traffic is schedule-independent (conservation): every version
/// moves exactly the bytes the workload defines.
#[test]
fn traffic_is_conserved_across_schedules() {
    let plan = FftPlan::new(14, 6);
    let chip = chip();
    let expect = model::total_dram_bytes(&plan);
    for version in [
        SimVersion::Coarse,
        SimVersion::Fine(SeedOrder::Natural),
        SimVersion::FineGuided,
    ] {
        let r = run_sim(plan, version, &chip, &opts());
        let total: u64 = r.bank_bytes.iter().sum();
        assert_eq!(total, expect, "{}", version.name());
    }
    // The hashed layout relocates but does not add traffic.
    let r = run_sim(
        plan,
        SimVersion::FineHash(SeedOrder::Natural),
        &chip,
        &opts(),
    );
    assert_eq!(r.bank_bytes.iter().sum::<u64>(), expect);
}
