//! Property tests of the machine simulator itself: for randomized task
//! models, the reported makespan must respect the physical lower bounds
//! (per-bank drain time, aggregate bandwidth, compute throughput) and the
//! trivial serial upper bound, and accounting must balance.

use c64sim::sched::SequencedScheduler;
use c64sim::{simulate, ChipConfig, MemOp, SimOptions, TaskCost, VecTaskModel};
use proptest::prelude::*;

fn small_chip(tus: usize, mlp: usize) -> ChipConfig {
    let mut c = ChipConfig::cyclops64().with_thread_units(tus);
    c.max_outstanding_ops = mlp;
    c.codelet_overhead_cycles = 0;
    c
}

/// Strategy: a task with 1..24 DRAM ops on arbitrary lines and some flops.
fn task_strategy() -> impl Strategy<Value = (Vec<(u64, bool)>, u64)> {
    (
        prop::collection::vec((0u64..4096, any::<bool>()), 1..24),
        0u64..4000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn makespan_respects_physical_bounds(
        tasks in prop::collection::vec(task_strategy(), 1..40),
        tus in 1usize..12,
        mlp in 1usize..6,
    ) {
        let chip = small_chip(tus, mlp);
        let mut model = VecTaskModel::default();
        let mut ids = Vec::new();
        for (ops, flops) in &tasks {
            let mem: Vec<MemOp> = ops
                .iter()
                .map(|&(line, write)| MemOp {
                    addr: line * 64,
                    bytes: 16,
                    write,
                    space: c64sim::Space::Dram,
                })
                .collect();
            ids.push(model.push(mem, TaskCost { flops: *flops, extra_cycles: 0 }));
        }
        let mut sched = SequencedScheduler::coarse(vec![ids]);
        let report = simulate(&chip, &model, &mut sched, &SimOptions {
            trace_window: 10_000,
        });

        // Accounting: every op lands on some bank; bytes conserved.
        let total_bytes: u64 = tasks
            .iter()
            .map(|(ops, _)| ops.len() as u64 * 16)
            .sum();
        prop_assert_eq!(report.bank_bytes.iter().sum::<u64>(), total_bytes);
        prop_assert_eq!(
            report.trace.totals().iter().sum::<u64>(),
            report.bank_accesses.iter().sum::<u64>()
        );

        // Lower bound 1: each bank must drain its bytes at 8 B/cycle.
        for (b, &bytes) in report.bank_bytes.iter().enumerate() {
            let floor = (bytes as f64 / chip.dram_bank_bytes_per_cycle()) as u64;
            prop_assert!(
                report.makespan_cycles + 1 >= floor,
                "bank {b}: makespan {} < drain floor {floor}",
                report.makespan_cycles
            );
        }

        // Lower bound 2: compute throughput (flops at 1/cycle/TU).
        let total_flops: u64 = tasks.iter().map(|(_, f)| *f).sum();
        let compute_floor = total_flops / tus as u64;
        prop_assert!(
            report.makespan_cycles >= compute_floor / 2,
            "makespan {} vs compute floor {compute_floor}",
            report.makespan_cycles
        );

        // Lower bound 3: the longest single task cannot be beaten.
        let longest_task = tasks
            .iter()
            .map(|(ops, flops)| *flops.max(&(ops.len() as u64 * 2)))
            .max()
            .unwrap();
        prop_assert!(report.makespan_cycles + 2 >= longest_task / 2);

        // Upper bound: fully serial execution with per-op latency exposed.
        let serial: u64 = tasks
            .iter()
            .map(|(ops, flops)| {
                flops + ops.len() as u64 * (2 + chip.dram_latency + 1)
            })
            .sum();
        prop_assert!(
            report.makespan_cycles <= serial + chip.dram_latency,
            "makespan {} exceeds serial bound {serial}",
            report.makespan_cycles
        );

        // Sanity: utilization fields in range.
        prop_assert!(report.dram_utilization >= 0.0 && report.dram_utilization <= 1.0 + 1e-9);
        prop_assert!(report.tu_utilization() >= 0.0 && report.tu_utilization() <= 1.0 + 1e-9);
    }

    /// Queue-delay accounting: delays are only reported on banks that were
    /// actually accessed, and a single-task serial run has zero delay.
    #[test]
    fn queue_delay_is_consistent(lines in prop::collection::vec(0u64..64, 1..16)) {
        let chip = small_chip(1, 1);
        let mut model = VecTaskModel::default();
        let ops: Vec<MemOp> = lines.iter().map(|&l| MemOp::dram_load(l * 64, 16)).collect();
        let id = model.push(ops, TaskCost::default());
        let mut sched = SequencedScheduler::coarse(vec![vec![id]]);
        let report = simulate(&chip, &model, &mut sched, &SimOptions { trace_window: 1000 });
        // One TU, mlp=1: each op waits for the previous completion, so no
        // op ever queues at a bank.
        prop_assert_eq!(report.trace.delay_totals().iter().sum::<u64>(), 0);
    }

    /// Determinism across repeated runs for arbitrary models.
    #[test]
    fn random_models_are_deterministic(
        tasks in prop::collection::vec(task_strategy(), 1..20),
        tus in 1usize..8,
    ) {
        let chip = small_chip(tus, 2);
        let mut model = VecTaskModel::default();
        let mut ids = Vec::new();
        for (ops, flops) in &tasks {
            let mem: Vec<MemOp> = ops
                .iter()
                .map(|&(line, _)| MemOp::dram_load(line * 64, 16))
                .collect();
            ids.push(model.push(mem, TaskCost { flops: *flops, extra_cycles: 0 }));
        }
        let run = || {
            let mut sched = SequencedScheduler::coarse(vec![ids.clone()]);
            simulate(&chip, &model, &mut sched, &SimOptions { trace_window: 10_000 })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan_cycles, b.makespan_cycles);
        prop_assert_eq!(a.busy_cycles, b.busy_cycles);
        prop_assert_eq!(a.trace.counts, b.trace.counts);
    }
}

/// The FFT workload against the analytic model: the simulator can never
/// move fewer bytes than the model predicts, at any radix.
#[test]
fn fft_workload_byte_accounting_matches_model() {
    use fgfft::{model, FftPlan, FftWorkload, TwiddleLayout};
    let chip = ChipConfig::cyclops64().with_thread_units(16);
    for (n_log2, radix_log2) in [(12u32, 4u32), (13, 6), (14, 6)] {
        let plan = FftPlan::new(n_log2, radix_log2);
        let workload = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
        let graph = fgfft::graph::FftGraph::new(plan);
        let mut sched = c64sim::sched::SequencedScheduler::fine(
            &graph,
            c64sim::SimPoolDiscipline::Lifo,
        );
        let r = simulate(&chip, &workload, &mut sched, &SimOptions { trace_window: 100_000 });
        assert_eq!(
            r.bank_bytes.iter().sum::<u64>(),
            model::total_dram_bytes(&plan),
            "n=2^{n_log2} radix=2^{radix_log2}"
        );
    }
}
