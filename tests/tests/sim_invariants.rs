//! Randomized tests of the machine simulator itself: for randomized task
//! models, the reported makespan must respect the physical lower bounds
//! (per-bank drain time, aggregate bandwidth, compute throughput) and the
//! trivial serial upper bound, and accounting must balance. Inputs come
//! from a seeded PRNG so runs are deterministic.

use c64sim::sched::SequencedScheduler;
use c64sim::{simulate, ChipConfig, MemOp, SimOptions, TaskCost, VecTaskModel};
use fgsupport::rng::Rng64;

fn small_chip(tus: usize, mlp: usize) -> ChipConfig {
    let mut c = ChipConfig::cyclops64().with_thread_units(tus);
    c.max_outstanding_ops = mlp;
    c.codelet_overhead_cycles = 0;
    c
}

/// A task with 1..24 DRAM ops on arbitrary lines and some flops.
fn random_task(rng: &mut Rng64) -> (Vec<(u64, bool)>, u64) {
    let n_ops = rng.gen_range(1..24);
    let ops = (0..n_ops)
        .map(|_| (rng.gen_below(4096), rng.gen_bool()))
        .collect();
    (ops, rng.gen_below(4000))
}

#[test]
fn makespan_respects_physical_bounds() {
    for case in 0..24u64 {
        let mut rng = Rng64::seed_from_u64(9000 + case);
        let tasks: Vec<_> = (0..rng.gen_range(1..40))
            .map(|_| random_task(&mut rng))
            .collect();
        let tus = rng.gen_range(1..12);
        let mlp = rng.gen_range(1..6);

        let chip = small_chip(tus, mlp);
        let mut model = VecTaskModel::default();
        let mut ids = Vec::new();
        for (ops, flops) in &tasks {
            let mem: Vec<MemOp> = ops
                .iter()
                .map(|&(line, write)| MemOp {
                    addr: line * 64,
                    bytes: 16,
                    write,
                    space: c64sim::Space::Dram,
                })
                .collect();
            ids.push(model.push(
                mem,
                TaskCost {
                    flops: *flops,
                    extra_cycles: 0,
                },
            ));
        }
        let mut sched = SequencedScheduler::coarse(vec![ids]);
        let report = simulate(
            &chip,
            &model,
            &mut sched,
            &SimOptions {
                trace_window: 10_000,
            },
        );

        // Accounting: every op lands on some bank; bytes conserved.
        let total_bytes: u64 = tasks.iter().map(|(ops, _)| ops.len() as u64 * 16).sum();
        assert_eq!(report.bank_bytes.iter().sum::<u64>(), total_bytes);
        assert_eq!(
            report.trace.totals().iter().sum::<u64>(),
            report.bank_accesses.iter().sum::<u64>()
        );

        // Lower bound 1: each bank must drain its bytes at 8 B/cycle.
        for (b, &bytes) in report.bank_bytes.iter().enumerate() {
            let floor = (bytes as f64 / chip.dram_bank_bytes_per_cycle()) as u64;
            assert!(
                report.makespan_cycles + 1 >= floor,
                "case {case} bank {b}: makespan {} < drain floor {floor}",
                report.makespan_cycles
            );
        }

        // Lower bound 2: compute throughput (flops at 1/cycle/TU).
        let total_flops: u64 = tasks.iter().map(|(_, f)| *f).sum();
        let compute_floor = total_flops / tus as u64;
        assert!(
            report.makespan_cycles >= compute_floor / 2,
            "case {case}: makespan {} vs compute floor {compute_floor}",
            report.makespan_cycles
        );

        // Lower bound 3: the longest single task cannot be beaten.
        let longest_task = tasks
            .iter()
            .map(|(ops, flops)| *flops.max(&(ops.len() as u64 * 2)))
            .max()
            .unwrap();
        assert!(report.makespan_cycles + 2 >= longest_task / 2);

        // Upper bound: fully serial execution with per-op latency exposed.
        let serial: u64 = tasks
            .iter()
            .map(|(ops, flops)| flops + ops.len() as u64 * (2 + chip.dram_latency + 1))
            .sum();
        assert!(
            report.makespan_cycles <= serial + chip.dram_latency,
            "case {case}: makespan {} exceeds serial bound {serial}",
            report.makespan_cycles
        );

        // Sanity: utilization fields in range.
        assert!(report.dram_utilization >= 0.0 && report.dram_utilization <= 1.0 + 1e-9);
        assert!(report.tu_utilization() >= 0.0 && report.tu_utilization() <= 1.0 + 1e-9);
    }
}

/// Queue-delay accounting: delays are only reported on banks that were
/// actually accessed, and a single-task serial run has zero delay.
#[test]
fn queue_delay_is_consistent() {
    for case in 0..16u64 {
        let mut rng = Rng64::seed_from_u64(9100 + case);
        let lines: Vec<u64> = (0..rng.gen_range(1..16))
            .map(|_| rng.gen_below(64))
            .collect();
        let chip = small_chip(1, 1);
        let mut model = VecTaskModel::default();
        let ops: Vec<MemOp> = lines
            .iter()
            .map(|&l| MemOp::dram_load(l * 64, 16))
            .collect();
        let id = model.push(ops, TaskCost::default());
        let mut sched = SequencedScheduler::coarse(vec![vec![id]]);
        let report = simulate(
            &chip,
            &model,
            &mut sched,
            &SimOptions { trace_window: 1000 },
        );
        // One TU, mlp=1: each op waits for the previous completion, so no
        // op ever queues at a bank.
        assert_eq!(
            report.trace.delay_totals().iter().sum::<u64>(),
            0,
            "case {case}"
        );
    }
}

/// Determinism across repeated runs for arbitrary models.
#[test]
fn random_models_are_deterministic() {
    for case in 0..12u64 {
        let mut rng = Rng64::seed_from_u64(9200 + case);
        let tasks: Vec<_> = (0..rng.gen_range(1..20))
            .map(|_| random_task(&mut rng))
            .collect();
        let tus = rng.gen_range(1..8);
        let chip = small_chip(tus, 2);
        let mut model = VecTaskModel::default();
        let mut ids = Vec::new();
        for (ops, flops) in &tasks {
            let mem: Vec<MemOp> = ops
                .iter()
                .map(|&(line, _)| MemOp::dram_load(line * 64, 16))
                .collect();
            ids.push(model.push(
                mem,
                TaskCost {
                    flops: *flops,
                    extra_cycles: 0,
                },
            ));
        }
        let run = || {
            let mut sched = SequencedScheduler::coarse(vec![ids.clone()]);
            simulate(
                &chip,
                &model,
                &mut sched,
                &SimOptions {
                    trace_window: 10_000,
                },
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles, "case {case}");
        assert_eq!(a.busy_cycles, b.busy_cycles, "case {case}");
        assert_eq!(a.trace.counts, b.trace.counts, "case {case}");
    }
}

/// The FFT workload against the analytic model: the simulator can never
/// move fewer bytes than the model predicts, at any radix.
#[test]
fn fft_workload_byte_accounting_matches_model() {
    use fgfft::{model, FftPlan, FftWorkload, TwiddleLayout};
    let chip = ChipConfig::cyclops64().with_thread_units(16);
    for (n_log2, radix_log2) in [(12u32, 4u32), (13, 6), (14, 6)] {
        let plan = FftPlan::new(n_log2, radix_log2);
        let workload = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
        let graph = fgfft::graph::FftGraph::new(plan);
        let mut sched =
            c64sim::sched::SequencedScheduler::fine(&graph, c64sim::SimPoolDiscipline::Lifo);
        let r = simulate(
            &chip,
            &workload,
            &mut sched,
            &SimOptions {
                trace_window: 100_000,
            },
        );
        assert_eq!(
            r.bank_bytes.iter().sum::<u64>(),
            model::total_dram_bytes(&plan),
            "n=2^{n_log2} radix=2^{radix_log2}"
        );
    }
}
