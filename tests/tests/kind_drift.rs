//! Per-kind drift tests: the composite decomposition in
//! `fgfft::workload::KindWorkload` must describe *exactly* what every
//! consumer does with it, for every non-C2C transform kind.
//!
//! The same two identities `workload_drift.rs` pins for the 1D complex
//! pipeline, re-proven over r2c, c2r, and 2D (square and rectangular):
//!
//! 1. **Execution drift** — `Plan::execute_recorded` captures, per
//!    composite task (inner codelets, untangle/tangle pairs, transpose
//!    tiles, c2r finalize spans), the element indices the hot path gathered
//!    and scattered. Mapped through `KindWorkload::element_addr`, those
//!    observations must equal the workload layer's static footprint
//!    task-for-task: same byte addresses in the same order, and one
//!    recorded twiddle value per static twiddle-region read.
//! 2. **Bank accounting** — `fgcheck`'s whole-run static per-bank
//!    histogram over the composite footprints must equal the per-bank
//!    access counts `c64sim` measures when `run_sim_kind` replays the
//!    barrier-phased composite schedule.
//!
//! Plus the real-kind table authority: the untangle factors a plan
//! precomputes must be bitwise the workload layer's `untangle_table`.

use c64sim::{ChipConfig, SimOptions};
use codelet::runtime::Runtime;
use fgcheck::{check_fft, FftCheckOptions};
use fgfft::planner::{Plan, PlanKey};
use fgfft::workload::{self, KindWorkload, Region, SeedOrder, TransformKind, Version, Workload};
use fgfft::{run_sim_kind, Complex64, TwiddleLayout};

const N_LOG2: u32 = 10;
const LAYOUTS: [TwiddleLayout; 2] = [TwiddleLayout::Linear, TwiddleLayout::BitReversedHash];
const ELEM: u64 = std::mem::size_of::<Complex64>() as u64;

/// The non-C2C kinds under test: both real directions, a square plane, and
/// a rectangular plane (rows ≠ cols exercises the asymmetric tile walk and
/// the distinct column plan).
fn kinds() -> [TransformKind; 4] {
    [
        TransformKind::R2C,
        TransformKind::C2R,
        TransformKind::C2C2D {
            rows_log2: 5,
            cols_log2: 5,
        },
        TransformKind::C2C2D {
            rows_log2: 4,
            cols_log2: 6,
        },
    ]
}

fn versions() -> [Version; 5] {
    Version::paper_set(SeedOrder::Natural)
}

fn test_signal(len: usize) -> Vec<Complex64> {
    (0..len)
        .map(|i| {
            let t = i as f64 / len as f64;
            Complex64::new(
                (t * 37.0).sin() + 0.25 * (t * 101.0).cos(),
                0.5 * (t * 53.0).cos(),
            )
        })
        .collect()
}

#[test]
fn recorded_kind_execution_matches_static_footprints() {
    let runtime = Runtime::with_workers(4);
    for kind in kinds() {
        for layout in LAYOUTS {
            for version in versions() {
                let key = PlanKey::with_kind(kind, 1 << N_LOG2, version, layout, 6);
                let plan = Plan::build(key);
                let kw = KindWorkload::new(kind, N_LOG2, key.radix_log2, layout);
                let mut data = test_signal(kw.buffer_len());
                let (_, records) = plan.execute_recorded(&mut data, &runtime);

                let ctx = format!("{kind:?} / {} / {layout:?}", version.name());
                assert_eq!(records.len(), kw.n_tasks(), "{ctx}: one record per task");

                // Mirror the documented composite task ordering so each
                // record can be decoded back to the wave codelet (and its
                // plan) whose stage table produced it.
                let t_in = kw.inner().plan().total_codelets();
                let radix = kw.inner().plan().radix();
                let n_pair = ((1usize << (N_LOG2 - 2)) + 1).div_ceil(radix);
                let untangle = workload::untangle_table(N_LOG2);

                for (id, rec) in records.iter().enumerate() {
                    // Partition the static footprint by access class, in
                    // emit order, expanded to element granularity (the
                    // transpose footprints are whole tile-row segments; the
                    // recorder reports individual elements).
                    let mut static_reads = Vec::new();
                    let mut static_writes = Vec::new();
                    let mut twiddle_addrs = Vec::new();
                    kw.for_each_op(id, |op| match op.region {
                        Region::Data | Region::Scratch => {
                            let out = if op.range.write {
                                &mut static_writes
                            } else {
                                &mut static_reads
                            };
                            out.extend((op.range.lo..op.range.hi).step_by(ELEM as usize));
                        }
                        Region::Twiddle => twiddle_addrs.push(op.range.lo),
                        Region::Spill => panic!("{ctx}: composite tasks never spill"),
                    });

                    let observed_reads: Vec<u64> = rec
                        .reads
                        .iter()
                        .map(|&e| kw.element_addr(e as usize))
                        .collect();
                    let observed_writes: Vec<u64> = rec
                        .writes
                        .iter()
                        .map(|&e| kw.element_addr(e as usize))
                        .collect();
                    assert_eq!(observed_reads, static_reads, "{ctx}: task {id} gathers");
                    assert_eq!(observed_writes, static_writes, "{ctx}: task {id} scatters");

                    let wave: Option<(&Workload, &Plan, usize)> = match kind {
                        TransformKind::R2C => (id < t_in).then_some((kw.inner(), &plan, id)),
                        TransformKind::C2R => (n_pair <= id && id < n_pair + t_in)
                            .then(|| (kw.inner(), &plan, id - n_pair)),
                        TransformKind::C2C2D {
                            rows_log2,
                            cols_log2,
                        } => {
                            let (rows, cols) = (1usize << rows_log2, 1usize << cols_log2);
                            let b = 1usize << kw.block_log2();
                            let tiles = (rows / b) * (cols / b);
                            let col_w = kw.col_inner().unwrap();
                            let col_p = plan.col_plan().unwrap();
                            let t_col = col_w.plan().total_codelets();
                            let row_end = rows * t_in;
                            let col_base = row_end + tiles;
                            let col_end = col_base + cols * t_col;
                            if id < row_end {
                                Some((kw.inner(), &plan, id % t_in))
                            } else if (col_base..col_end).contains(&id) {
                                Some((col_w, col_p, (id - col_base) % t_col))
                            } else {
                                None
                            }
                        }
                        TransformKind::C2C => unreachable!("kinds() is non-C2C"),
                    };
                    if let Some((w, p, local)) = wave {
                        // Inner-wave codelets multiply by the stage table's
                        // butterfly twiddle run — bitwise the descriptor's.
                        let expected = w.descriptor(local).twiddle_run(p.twiddles());
                        assert_eq!(
                            rec.twiddles.len(),
                            expected.len(),
                            "{ctx}: task {id} twiddle run length"
                        );
                        for (k, (got, want)) in rec.twiddles.iter().zip(&expected).enumerate() {
                            assert!(
                                got.re.to_bits() == want.re.to_bits()
                                    && got.im.to_bits() == want.im.to_bits(),
                                "{ctx}: task {id} twiddle {k}: {got:?} != {want:?}"
                            );
                        }
                    } else {
                        // Pair tasks read one untangle factor per static
                        // twiddle read; tiles and finalize spans read none.
                        assert_eq!(
                            rec.twiddles.len(),
                            twiddle_addrs.len(),
                            "{ctx}: task {id} untangle factor count"
                        );
                        for (got, &addr) in rec.twiddles.iter().zip(&twiddle_addrs) {
                            let k = ((addr - kw.untangle_addr(0)) / ELEM) as usize;
                            let want = untangle[k];
                            assert!(
                                got.re.to_bits() == want.re.to_bits()
                                    && got.im.to_bits() == want.im.to_bits(),
                                "{ctx}: task {id} untangle factor {k}: {got:?} != {want:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn static_kind_bank_totals_equal_simulated_totals() {
    let chip = ChipConfig::cyclops64().with_thread_units(16);
    let options = SimOptions::default();
    // Composite footprints and phases are version-independent (the version
    // only reorders the inner wave), so one version suffices here.
    let version = Version::paper_set(SeedOrder::Natural)[1]; // CoarseHash, as the CLI sweep
    for kind in kinds() {
        for layout in LAYOUTS {
            let report = check_fft(&FftCheckOptions {
                layout: Some(layout),
                kind,
                ..FftCheckOptions::new(N_LOG2, version)
            });
            let banks = workload::interleave().banks;
            let mut static_totals = vec![0u64; banks];
            for row in &report.bank.hist {
                for (b, &c) in row.iter().enumerate() {
                    static_totals[b] += c;
                }
            }
            let key = PlanKey::with_kind(kind, 1 << N_LOG2, version, layout, 6);
            let sim = run_sim_kind(kind, N_LOG2, key.radix_log2, layout, &chip, &options);
            assert_eq!(
                static_totals, sim.bank_accesses,
                "{kind:?} / {layout:?}: static bank histogram must equal \
                 the measured access counts"
            );
        }
    }
}

#[test]
fn plan_untangle_tables_match_workload_authority() {
    for kind in [TransformKind::R2C, TransformKind::C2R] {
        for n_log2 in [4u32, N_LOG2, 13] {
            let key = PlanKey::with_kind(
                kind,
                1 << n_log2,
                Version::paper_set(SeedOrder::Natural)[0],
                TwiddleLayout::Linear,
                6,
            );
            let plan = Plan::build(key);
            let table = plan.untangle().expect("real plans carry the table");
            let authority = workload::untangle_table(n_log2);
            assert_eq!(table.len(), authority.len(), "{kind:?} N=2^{n_log2}");
            for (k, (got, want)) in table.iter().zip(&authority).enumerate() {
                assert!(
                    got.re.to_bits() == want.re.to_bits() && got.im.to_bits() == want.im.to_bits(),
                    "{kind:?} N=2^{n_log2}: factor {k}: {got:?} != {want:?}"
                );
            }
        }
    }
}
