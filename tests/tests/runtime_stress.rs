//! Stress tests of the codelet runtime on randomized DAGs: every codelet
//! fires exactly once, dependencies are respected under heavy parallelism,
//! and all pool disciplines agree.

use codelet::graph::{CodeletProgram, ExplicitGraph};
use codelet::pool::PoolDiscipline;
use codelet::runtime::{Runtime, RuntimeConfig};
use fgsupport::rng::Rng64;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Random layered DAG: `layers` layers of `width` codelets; each codelet
/// depends on 1..=4 random codelets of the previous layer.
fn random_dag(seed: u64, layers: usize, width: usize) -> ExplicitGraph {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut g = ExplicitGraph::new(layers * width);
    for l in 1..layers {
        for c in 0..width {
            let deps = rng.gen_range(1..4.min(width) + 1);
            let mut picked = Vec::new();
            while picked.len() < deps {
                let p = rng.gen_range(0..width);
                if !picked.contains(&p) {
                    picked.push(p);
                }
            }
            for p in picked {
                g.add_edge((l - 1) * width + p, l * width + c);
            }
        }
    }
    g
}

#[test]
fn random_dags_fire_every_codelet_once() {
    for seed in 0..6 {
        let g = random_dag(seed, 8, 50);
        let counts: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
        let rt = Runtime::new(RuntimeConfig::with_workers(8));
        for discipline in [
            PoolDiscipline::Fifo,
            PoolDiscipline::Lifo,
            PoolDiscipline::WorkSteal,
        ] {
            counts.iter().for_each(|c| c.store(0, Ordering::Relaxed));
            let stats = rt.run(&g, discipline, |id| {
                counts[id].fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(stats.total_fired as usize, g.len());
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}

#[test]
fn dependencies_hold_under_contention() {
    let g = random_dag(99, 6, 64);
    let clock = AtomicU32::new(1);
    let stamp: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
    let rt = Runtime::new(RuntimeConfig::with_workers(16));
    rt.run(&g, PoolDiscipline::WorkSteal, |id| {
        stamp[id].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
    });
    // Every edge u -> v must satisfy stamp[u] < stamp[v].
    let mut kids = Vec::new();
    for u in 0..g.len() {
        kids.clear();
        g.dependents(u, &mut kids);
        for &v in &kids {
            assert!(
                stamp[u].load(Ordering::SeqCst) < stamp[v].load(Ordering::SeqCst),
                "edge {u}->{v} violated"
            );
        }
    }
}

#[test]
fn priority_pool_respects_keys_when_single_threaded() {
    // 100 independent codelets with explicit priorities; 1 worker must fire
    // them in key order.
    let g = ExplicitGraph::new(100);
    let keys: Vec<u64> = (0..100u64).map(|i| 99 - i).collect();
    let order = std::sync::Mutex::new(Vec::new());
    let rt = Runtime::new(RuntimeConfig::with_workers(1));
    rt.run(
        &g,
        PoolDiscipline::Priority(std::sync::Arc::new(keys)),
        |id| order.lock().unwrap().push(id),
    );
    let order = order.into_inner().unwrap();
    assert_eq!(order, (0..100).rev().collect::<Vec<_>>());
}

#[test]
fn run_partial_executes_exact_subset() {
    // Two disjoint chains; seeds only reach one of them.
    let mut g = ExplicitGraph::new(20);
    for i in 0..9 {
        g.add_edge(i, i + 1); // chain A: 0..10
        g.add_edge(10 + i, 11 + i); // chain B: 10..20
    }
    let fired = AtomicUsize::new(0);
    let rt = Runtime::new(RuntimeConfig::with_workers(4));
    let stats = rt.run_partial(&g, PoolDiscipline::Lifo, &[0], 10, |_| {
        fired.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(stats.total_fired, 10);
    assert_eq!(fired.load(Ordering::Relaxed), 10);
}

#[test]
fn phased_execution_over_random_layers() {
    let layers = 5;
    let width = 40;
    let phases: Vec<Vec<usize>> = (0..layers)
        .map(|l| (l * width..(l + 1) * width).collect())
        .collect();
    let clock = AtomicU32::new(0);
    let stamp: Vec<AtomicU32> = (0..layers * width).map(|_| AtomicU32::new(0)).collect();
    let rt = Runtime::new(RuntimeConfig::with_workers(8));
    let stats = rt.run_phased(&phases, |id| {
        stamp[id].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
    });
    assert_eq!(stats.barriers, layers as u64);
    for l in 1..layers {
        let prev_max = (0..width)
            .map(|c| stamp[(l - 1) * width + c].load(Ordering::SeqCst))
            .max()
            .unwrap();
        let cur_min = (0..width)
            .map(|c| stamp[l * width + c].load(Ordering::SeqCst))
            .min()
            .unwrap();
        assert!(cur_min > prev_max, "phase {l} overlapped phase {}", l - 1);
    }
}

#[test]
fn wide_fanout_graph() {
    // One source feeding 2000 sinks: the source's completion releases a
    // burst; every sink must still fire exactly once.
    let mut g = ExplicitGraph::new(2001);
    for i in 1..=2000 {
        g.add_edge(0, i);
    }
    let fired = AtomicUsize::new(0);
    let rt = Runtime::new(RuntimeConfig::with_workers(8));
    rt.run(&g, PoolDiscipline::WorkSteal, |_| {
        fired.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(fired.load(Ordering::Relaxed), 2001);
}

#[test]
fn deep_chain_does_not_stack_overflow_or_deadlock() {
    let n = 50_000;
    let mut g = ExplicitGraph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1);
    }
    let fired = AtomicUsize::new(0);
    let rt = Runtime::new(RuntimeConfig::with_workers(4));
    let stats = rt.run(&g, PoolDiscipline::Lifo, |_| {
        fired.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(stats.total_fired as usize, n);
}
