//! Randomized schedule fuzzing for fgcheck pass 4 and the certificate
//! layer: mutated flattened tables and certificates (bit flips,
//! truncations, off-by-one indices) must every one be rejected with a
//! specific FG code or `CertError` — never undefined behavior, never a
//! panic — while unmodified plans pass across 5 versions × 2 layouts (no
//! false positives).

use fgcheck::{check_plan, check_plan_tables};
use fgfft::cert::{CertError, Certificate};
use fgfft::exec::{SeedOrder, Version};
use fgfft::planner::{PlanKey, StageTableView};
use fgfft::wisdom::{Wisdom, WisdomEntry, WisdomStatus};
use fgfft::{Complex64, Plan, ScheduleTuning, TwiddleLayout};
use fgsupport::rng::Rng64;

const VERSIONS: [Version; 5] = [
    Version::Coarse,
    Version::CoarseHash,
    Version::Fine(SeedOrder::Natural),
    Version::FineHash(SeedOrder::Natural),
    Version::FineGuided,
];

const LAYOUTS: [TwiddleLayout; 2] = [TwiddleLayout::Linear, TwiddleLayout::MultiplicativeHash];

fn tuned_plan(n_log2: u32, version: Version, layout: TwiddleLayout, rng: &mut Rng64) -> Plan {
    let cps = 1usize << (n_log2 - 6);
    // A random (valid) pool permutation: Fisher–Yates.
    let mut order: Vec<usize> = (0..cps).collect();
    for i in (1..cps).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    let tuning = ScheduleTuning {
        pool_order: Some(order),
        last_early: None,
        transpose_block_log2: None,
    };
    Plan::build_tuned(PlanKey::new(1 << n_log2, version, layout), Some(&tuning))
}

/// Every unmodified plan — all versions, both layouts, random tunings —
/// passes pass 4 and verifies its own certificate: zero false positives.
#[test]
fn unmutated_plans_have_no_false_positives() {
    let mut rng = Rng64::seed_from_u64(0xFACE);
    for &version in &VERSIONS {
        for &layout in &LAYOUTS {
            let plan = tuned_plan(9, version, layout, &mut rng);
            let diags = check_plan(&plan);
            assert!(diags.is_empty(), "{version:?}/{layout:?}: {diags:?}");
            let cert = Certificate::for_plan(&plan).expect("tuning valid");
            cert.verify_plan(&plan)
                .unwrap_or_else(|e| panic!("{version:?}/{layout:?}: {e}"));
        }
    }
}

/// One stage's tables, owned: (gather, pairs, twiddles).
type OwnedStage = (Vec<u32>, Vec<(u32, u32)>, Vec<Complex64>);

/// Owned, mutable copy of a plan's tables that can be lent back to the
/// checker as `StageTableView`s.
struct OwnedTables {
    stages: Vec<OwnedStage>,
    swaps: Vec<(u32, u32)>,
}

impl OwnedTables {
    fn of(plan: &Plan) -> Self {
        let stages = (0..plan.fft_plan().stages())
            .map(|s| {
                let t = plan.stage_table(s);
                (t.gather.to_vec(), t.pairs.to_vec(), t.twiddles.to_vec())
            })
            .collect();
        Self {
            stages,
            swaps: plan.bitrev_swaps().to_vec(),
        }
    }

    fn check(&self, plan: &Plan) -> Vec<codelet::verify::Diagnostic> {
        let views: Vec<StageTableView<'_>> = self
            .stages
            .iter()
            .map(|(g, p, t)| StageTableView {
                gather: g,
                pairs: p,
                twiddles: t,
            })
            .collect();
        check_plan_tables(plan.fft_plan(), plan.twiddles(), &views, &self.swaps)
    }

    /// Apply one random mutation; returns a label for failure messages.
    fn mutate(&mut self, rng: &mut Rng64) -> String {
        let stage = rng.gen_range(0..self.stages.len());
        let (gather, pairs, twiddles) = &mut self.stages[stage];
        match rng.gen_below(8) {
            0 => {
                // Bit flip in a gather index.
                let i = rng.gen_range(0..gather.len());
                let bit = rng.gen_below(16) as u32;
                gather[i] ^= 1 << bit;
                format!("stage {stage}: gather[{i}] ^= 1<<{bit}")
            }
            1 => {
                // Off-by-one gather index.
                let i = rng.gen_range(0..gather.len());
                gather[i] = gather[i].wrapping_add(1);
                format!("stage {stage}: gather[{i}] += 1")
            }
            2 => {
                // Duplicate another codelet's element: aliasing.
                let i = rng.gen_range(0..gather.len());
                let j = rng.gen_range(0..gather.len());
                if gather[i] == gather[j] {
                    gather[i] = gather[j].wrapping_add(1); // still a change
                } else {
                    gather[i] = gather[j];
                }
                format!("stage {stage}: gather[{i}] = gather[{j}]")
            }
            3 => {
                // Truncate the gather table.
                gather.pop();
                format!("stage {stage}: gather truncated")
            }
            4 => {
                // Corrupt a butterfly pair.
                let i = rng.gen_range(0..pairs.len());
                if rng.gen_bool() {
                    pairs[i].1 = pairs[i].0; // degenerate lo == hi
                } else {
                    pairs[i].1 += 64; // out of the codelet buffer
                }
                format!("stage {stage}: pair[{i}] corrupted")
            }
            5 => {
                // Flip one mantissa bit of a twiddle.
                let i = rng.gen_range(0..twiddles.len());
                let re = twiddles[i].re.to_bits() ^ (1 << rng.gen_below(52));
                twiddles[i].re = f64::from_bits(re);
                format!("stage {stage}: twiddle[{i}] bit-flipped")
            }
            6 => {
                // Truncate the twiddle table.
                twiddles.pop();
                format!("stage {stage}: twiddles truncated")
            }
            _ => {
                // Corrupt the bit-reversal swap list.
                if rng.gen_bool() && !self.swaps.is_empty() {
                    let i = rng.gen_range(0..self.swaps.len());
                    self.swaps[i].1 = self.swaps[i].1.wrapping_add(1);
                    format!("swaps[{i}] += 1")
                } else {
                    self.swaps.push((0, 1));
                    "swaps: spurious entry appended".to_string()
                }
            }
        }
    }
}

/// Every randomly mutated table draws at least one FG4xx error — across
/// all five versions and both layouts, many mutations each — and the
/// checker never panics on corrupted input.
#[test]
fn every_mutated_table_is_rejected() {
    let mut rng = Rng64::seed_from_u64(0xBAD_5EED);
    for &version in &VERSIONS {
        for &layout in &LAYOUTS {
            let plan = tuned_plan(8, version, layout, &mut rng);
            for round in 0..20 {
                let mut tables = OwnedTables::of(&plan);
                let label = tables.mutate(&mut rng);
                let diags = tables.check(&plan);
                assert!(
                    diags.iter().any(|d| d.code.starts_with("FG4")),
                    "{version:?}/{layout:?} round {round}: mutant not rejected ({label}): \
                     {diags:?}"
                );
            }
        }
    }
}

/// Certificates with random single-bit corruption in any field are
/// rejected — with `Tampered` unless the flip lands in a re-sealed field —
/// and multi-field forgeries still fail the digest checks.
#[test]
fn every_mutated_certificate_is_rejected() {
    let mut rng = Rng64::seed_from_u64(0xC0FFEE);
    let plan = tuned_plan(9, Version::FineGuided, TwiddleLayout::Linear, &mut rng);
    let cert = Certificate::for_plan(&plan).expect("tuning valid");
    for round in 0..64 {
        let mut bad = cert;
        let bit = 1u64 << rng.gen_below(64);
        match rng.gen_below(6) {
            0 => bad.workload_rev ^= bit,
            1 => bad.schedule ^= bit,
            2 => bad.tables ^= bit,
            3 => bad.hb_witness ^= bit,
            4 => bad.bank_bound_milli ^= bit,
            _ => bad.seal ^= bit,
        }
        let err = bad
            .verify_plan(&plan)
            .expect_err(&format!("round {round}: corrupted cert accepted"));
        assert!(
            matches!(
                err,
                CertError::Tampered
                    | CertError::ForeignRevision { .. }
                    | CertError::ScheduleMismatch
                    | CertError::TableMismatch
            ),
            "round {round}: unexpected error {err:?}"
        );
    }
    // A forged certificate (consistent seal over wrong digests) still fails
    // on the digests themselves.
    let mut forged = cert;
    forged.schedule ^= 0xDEAD;
    forged.tables ^= 0xBEEF;
    forged = Certificate::new(
        forged.schedule,
        forged.tables,
        forged.hb_witness,
        forged.bank_bound_milli,
    );
    assert_eq!(forged.verify_plan(&plan), Err(CertError::ScheduleMismatch));
}

/// Wisdom-file-level fuzzing: byte-level corruption of a saved, certified
/// wisdom file never loads as `Loaded` with different content and never
/// panics — every outcome is a specific `WisdomStatus`.
#[test]
fn corrupted_wisdom_files_never_load_silently() {
    let dir = std::env::temp_dir().join(format!("fgfft-certfuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("wisdom.json");

    let key = PlanKey::new(1 << 9, Version::FineGuided, TwiddleLayout::Linear);
    let tuning = ScheduleTuning {
        pool_order: Some((0..8).rev().collect()),
        last_early: None,
        transpose_block_log2: None,
    };
    let cert = Certificate::for_plan(&Plan::build_tuned(key, Some(&tuning))).unwrap();
    let mut wisdom = Wisdom::new();
    wisdom.insert(WisdomEntry {
        key,
        tuning,
        workers: 2,
        batch: 4,
        backend: Default::default(),
        median_ns: 10,
        seed_median_ns: 20,
        cert: Some(cert),
    });
    wisdom.save(&path).expect("save");
    let pristine = std::fs::read_to_string(&path).expect("read back");
    assert!(Wisdom::load(&path).1.is_loaded(), "pristine file loads");

    let mut rng = Rng64::seed_from_u64(7);
    let mut rejected = 0usize;
    for _ in 0..60 {
        let mut bytes = pristine.clone().into_bytes();
        match rng.gen_below(3) {
            0 => {
                // Flip one character.
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = bytes[i].wrapping_add(1 + rng.gen_below(9) as u8);
            }
            1 => {
                // Truncate.
                bytes.truncate(rng.gen_range(0..bytes.len()));
            }
            _ => {
                // Digit nudge somewhere (hits lengths, indices, digests).
                if let Some(i) = (0..bytes.len())
                    .map(|_| rng.gen_range(0..bytes.len()))
                    .find(|&i| bytes[i].is_ascii_digit())
                {
                    bytes[i] = b'0' + ((bytes[i] - b'0' + 1) % 10);
                }
            }
        }
        std::fs::write(&path, &bytes).expect("write mutant");
        let (loaded, status) = Wisdom::load(&path);
        match status {
            WisdomStatus::Loaded { .. } => {
                // Mutation must have been semantically neutral (e.g. inside
                // an ignored digit of a measurement): content equal is the
                // only acceptable way to still load... but digests make
                // near-all content non-neutral. Accept only exact re-parse
                // of an equivalent store.
                assert_eq!(loaded.entries().len(), 1);
                assert!(
                    loaded.entries()[0]
                        .cert
                        .as_ref()
                        .expect("certified")
                        .verify_static(loaded.entries()[0].key, Some(&loaded.entries()[0].tuning))
                        .is_ok(),
                    "a loaded mutant must still verify"
                );
            }
            _ => rejected += 1,
        }
    }
    assert!(
        rejected > 30,
        "fuzzing should reject most mutants, rejected only {rejected}/60"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The composite kinds through the same gauntlet, clean side: every
/// unmodified r2c/c2r/2D plan — all versions, both layouts — passes pass 4
/// plus the FG409 kind extension and verifies its own certificate.
#[test]
fn unmutated_composite_plans_have_no_false_positives() {
    use fgfft::workload::TransformKind;
    let kinds = [
        TransformKind::R2C,
        TransformKind::C2R,
        TransformKind::C2C2D {
            rows_log2: 4,
            cols_log2: 5,
        },
    ];
    for kind in kinds {
        for &version in &VERSIONS {
            for &layout in &LAYOUTS {
                let plan = Plan::build(PlanKey::with_kind(kind, 1 << 9, version, layout, 6));
                let mut diags = check_plan(&plan);
                diags.extend(fgcheck::check_kind_extensions(&plan));
                assert!(
                    diags.is_empty(),
                    "{kind:?}/{version:?}/{layout:?}: {diags:?}"
                );
                let cert = Certificate::for_plan(&plan).expect("untuned plan");
                cert.verify_plan(&plan)
                    .unwrap_or_else(|e| panic!("{kind:?}/{version:?}/{layout:?}: {e}"));
            }
        }
    }
}

/// A certificate sealed for one transform kind never verifies another
/// kind's plan of the same size/version/layout: the schedule digest binds
/// the kind (and the transpose tiling), so kind confusion is caught before
/// any table comparison — r2c vs c2r included, whose table digests collide
/// by design.
#[test]
fn composite_certificates_do_not_transfer_across_kinds() {
    use fgfft::workload::TransformKind;
    let version = Version::CoarseHash;
    let layout = TwiddleLayout::Linear;
    let kinds = [
        TransformKind::C2C,
        TransformKind::R2C,
        TransformKind::C2R,
        TransformKind::C2C2D {
            rows_log2: 4,
            cols_log2: 5,
        },
        TransformKind::C2C2D {
            rows_log2: 5,
            cols_log2: 4,
        },
    ];
    let plans: Vec<Plan> = kinds
        .iter()
        .map(|&kind| Plan::build(PlanKey::with_kind(kind, 1 << 9, version, layout, 6)))
        .collect();
    let certs: Vec<Certificate> = plans
        .iter()
        .map(|p| Certificate::for_plan(p).expect("clean plan"))
        .collect();
    for (i, cert) in certs.iter().enumerate() {
        for (j, plan) in plans.iter().enumerate() {
            if i == j {
                cert.verify_plan(plan).expect("own plan verifies");
            } else {
                assert_eq!(
                    cert.verify_plan(plan),
                    Err(CertError::ScheduleMismatch),
                    "cert of {:?} accepted by plan of {:?}",
                    kinds[i],
                    kinds[j]
                );
            }
        }
    }

    // A tuned transpose tiling re-seals the 2D schedule: the default-block
    // certificate must not verify the retiled plan.
    let key2d = PlanKey::with_kind(
        TransformKind::C2C2D {
            rows_log2: 4,
            cols_log2: 5,
        },
        1 << 9,
        version,
        layout,
        6,
    );
    let tuning = ScheduleTuning {
        pool_order: None,
        last_early: None,
        transpose_block_log2: Some(3),
    };
    let retiled = Plan::build_tuned(key2d, Some(&tuning));
    let cert = Certificate::for_plan(&retiled).expect("tuned 2D plan");
    cert.verify_plan(&retiled).expect("own plan verifies");
    assert_eq!(
        certs[3].verify_plan(&retiled),
        Err(CertError::ScheduleMismatch),
        "default-block certificate accepted a retiled plan"
    );
}

/// The 64-round certificate bit-flip campaign repeated over composite
/// plans: every corrupted field draws a specific `CertError`, never a
/// panic, for r2c and 2D alike.
#[test]
fn every_mutated_composite_certificate_is_rejected() {
    use fgfft::workload::TransformKind;
    let mut rng = Rng64::seed_from_u64(0x00FE_ED2D);
    for kind in [
        TransformKind::R2C,
        TransformKind::C2C2D {
            rows_log2: 4,
            cols_log2: 5,
        },
    ] {
        let plan = Plan::build(PlanKey::with_kind(
            kind,
            1 << 9,
            Version::FineGuided,
            TwiddleLayout::Linear,
            6,
        ));
        let cert = Certificate::for_plan(&plan).expect("clean plan");
        for round in 0..64 {
            let mut bad = cert;
            let bit = 1u64 << rng.gen_below(64);
            match rng.gen_below(6) {
                0 => bad.workload_rev ^= bit,
                1 => bad.schedule ^= bit,
                2 => bad.tables ^= bit,
                3 => bad.hb_witness ^= bit,
                4 => bad.bank_bound_milli ^= bit,
                _ => bad.seal ^= bit,
            }
            let err = bad
                .verify_plan(&plan)
                .expect_err(&format!("{kind:?} round {round}: corrupted cert accepted"));
            assert!(
                matches!(
                    err,
                    CertError::Tampered
                        | CertError::ForeignRevision { .. }
                        | CertError::ScheduleMismatch
                        | CertError::TableMismatch
                ),
                "{kind:?} round {round}: unexpected error {err:?}"
            );
        }
    }
}
