//! Cross-crate cluster tests: bit-exactness of sharded serving against the
//! HostScalar backend, tenant isolation under a flooding neighbor,
//! dispatcher-kill fault injection with intact cluster-wide accounting,
//! and the buffer pool's leak guard across failure paths.

use codelet::runtime::Runtime;
use fgfft::exec::Version;
use fgfft::planner::{Plan, PlanKey};
use fgfft::{BackendSel, Complex64};
use fgserve::{
    ClusterConfig, ClusterStats, FaultInjector, FftCluster, Lane, QosConfig, Request, ServeConfig,
    ServeError, TenantId, Ticket,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex64::new(
                (t * 0.419).sin() + 0.2 * (t * 0.031).cos(),
                (t * 0.157).cos(),
            )
        })
        .collect()
}

fn bits(data: &[Complex64]) -> Vec<(u64, u64)> {
    data.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

/// Redeem with a hang guard: a wedged cluster fails, not hangs, the test.
fn wait_bounded(ticket: Ticket) -> Result<fgserve::Response, ServeError> {
    ticket
        .wait_timeout(Duration::from_secs(60))
        .expect("ticket not completed within 60 s — the no-hang guarantee is broken")
}

fn assert_cluster_drained(stats: &ClusterStats) {
    assert_eq!(
        stats.accepted,
        stats.settled(),
        "cluster accounting identity violated: {stats:?}"
    );
    for (i, shard) in stats.per_shard.iter().enumerate() {
        assert_eq!(
            shard.accepted,
            shard.completed + shard.deadline_missed + shard.failed,
            "shard {i} accounting identity violated: {shard:?}"
        );
    }
}

fn small_base() -> ServeConfig {
    ServeConfig {
        queue_capacity: 256,
        max_batch: 4,
        workers: 2,
        dispatchers: 1,
        ..ServeConfig::default()
    }
}

/// Every response served through the cluster — whatever shard it routed
/// to, batched or deferred by the cold gate — must be bit-identical to the
/// same plan executed directly on the HostScalar backend.
#[test]
fn cluster_is_bit_exact_vs_host_scalar_reference() {
    let cluster = FftCluster::start(ClusterConfig {
        shards: 3,
        base: small_base(),
        ..ClusterConfig::default()
    });
    let runtime = Runtime::with_workers(2);
    let version = Version::FineGuided;
    for n_log2 in [6u32, 8, 10, 12] {
        let n = 1usize << n_log2;
        let input = signal(n);
        // Reference: the identical plan tables, driven by HostScalar.
        let plan = Arc::new(Plan::build(PlanKey::new(n, version, version.layout())));
        let prepared = BackendSel::SCALAR.build().prepare(&plan);
        let mut want = input.clone();
        prepared.execute_batch(&mut [want.as_mut_slice()], &runtime);
        let want = bits(&want);
        // Several concurrent submissions: exercises batching and, on the
        // first (cold) group, the slow-start deferral path.
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                cluster
                    .submit(Request::new(input.clone()))
                    .expect("admitted")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = wait_bounded(ticket).expect("completed");
            assert!(
                bits(&response.buffer) == want,
                "N=2^{n_log2} response {i}: bitwise drift vs HostScalar"
            );
        }
    }
    let stats = cluster.shutdown();
    assert_cluster_drained(&stats);
    assert_eq!(stats.completed, 16);
}

/// Tenant isolation: a tenant flooding at far beyond its allowance gets
/// throttled at the front door; a well-behaved tenant's deadline-carrying
/// interactive traffic keeps completing on time throughout the flood.
#[test]
fn flooding_tenant_cannot_break_victim_deadlines() {
    let flooder = TenantId(1);
    let victim = TenantId(2);
    let cluster = Arc::new(FftCluster::start(ClusterConfig {
        shards: 2,
        qos: Some(QosConfig {
            rate: 1_000.0,
            burst: 50.0,
            // The flooder is allowed 25 req/s with a burst of 4; it will
            // submit as fast as the loop spins.
            overrides: vec![(flooder, 25.0, 4.0)],
        }),
        base: small_base(),
        ..ClusterConfig::default()
    }));
    // Warm both plans so the measurement is steady-state serving, not
    // plan construction.
    for n in [1usize << 8, 1 << 12] {
        wait_bounded(cluster.submit(Request::new(signal(n))).expect("admitted"))
            .expect("warmup completes");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let flood_handle = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut sent, mut throttled) = (0u64, 0u64);
            let payload = signal(1 << 12);
            while !stop.load(Ordering::Relaxed) {
                match cluster.submit(
                    Request::new(payload.clone())
                        .with_tenant(flooder)
                        .with_lane(Lane::Bulk),
                ) {
                    Ok(_ticket) => sent += 1, // ticket dropped; still served
                    Err(ServeError::Throttled { .. }) => throttled += 1,
                    Err(other) => panic!("unexpected flood error: {other:?}"),
                }
            }
            (sent, throttled)
        })
    };
    // The victim submits paced interactive traffic with real deadlines.
    let mut victim_outcomes = Vec::new();
    for _ in 0..40 {
        let req = Request::new(signal(1 << 8))
            .with_tenant(victim)
            .with_deadline(Instant::now() + Duration::from_millis(500));
        let ticket = cluster.submit(req).expect("victim must always be admitted");
        victim_outcomes.push(wait_bounded(ticket));
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let (flood_sent, flood_throttled) = flood_handle.join().expect("flooder panicked");
    let misses = victim_outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::DeadlineExceeded)))
        .count();
    assert_eq!(
        misses, 0,
        "victim missed {misses}/40 deadlines behind a throttled flooder"
    );
    assert!(
        victim_outcomes.iter().all(|o| o.is_ok()),
        "every victim request must complete"
    );
    assert!(
        flood_throttled > flood_sent,
        "the flood must be mostly throttled (sent {flood_sent}, throttled {flood_throttled})"
    );
    let cluster = Arc::try_unwrap(cluster).expect("all clones joined");
    let stats = cluster.shutdown();
    assert_cluster_drained(&stats);
    assert_eq!(stats.throttled, flood_throttled);
}

/// Kill one shard's dispatcher mid-batch. The killed shard's in-flight
/// jobs fail through their drop-guards, the supervisor respawns the
/// thread, the other shard never notices — and the cluster-wide
/// accounting identity still holds exactly.
#[test]
fn dispatcher_kill_in_one_shard_keeps_cluster_accounting() {
    // Routing is deterministic in (shards, vnodes, version): probe a
    // throwaway cluster to learn which shard owns the poisoned size.
    let probe = FftCluster::start(ClusterConfig {
        shards: 2,
        base: small_base(),
        ..ClusterConfig::default()
    });
    let n_poisoned = 1usize << 9;
    let target = probe.shard_for(n_poisoned);
    // Find a size the *other* shard owns, to prove it stays healthy.
    let n_healthy = (2..16)
        .map(|log2| 1usize << log2)
        .find(|&n| probe.shard_for(n) != target)
        .expect("some size routes to the other shard");
    probe.shutdown();

    let fault = FaultInjector::kill_dispatcher_on_batch(1);
    let mut shard_faults = vec![FaultInjector::none(), FaultInjector::none()];
    shard_faults[target] = fault.clone();
    let cluster = FftCluster::start(ClusterConfig {
        shards: 2,
        shard_faults,
        base: small_base(),
        ..ClusterConfig::default()
    });
    // First batch on the target shard dies with its dispatcher.
    let poisoned: Vec<Ticket> = (0..3)
        .map(|_| {
            cluster
                .submit(Request::new(signal(n_poisoned)))
                .expect("admitted")
        })
        .collect();
    let mut failed = 0;
    for ticket in poisoned {
        match wait_bounded(ticket) {
            Err(ServeError::Internal { .. }) => failed += 1,
            Ok(_) => {} // raced ahead of the kill into a later batch
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(fault.fired(), 1, "the kill must actually have fired");
    assert!(
        failed >= 1,
        "the killed batch must fail at least one ticket"
    );
    // The untouched shard serves normally throughout...
    wait_bounded(
        cluster
            .submit(Request::new(signal(n_healthy)))
            .expect("admitted"),
    )
    .expect("healthy shard unaffected");
    // ...and the supervisor respawns the killed shard's dispatcher.
    wait_bounded(
        cluster
            .submit(Request::new(signal(n_poisoned)))
            .expect("admitted"),
    )
    .expect("killed shard recovered");
    let stats = cluster.shutdown();
    assert_cluster_drained(&stats);
    assert_eq!(stats.failed, failed as u64);
    assert_eq!(stats.per_shard[target].dispatcher_restarts, 1);
}

/// The pool leak guard holds across every exit path: completed pooled
/// responses, responses dropped unredeemed, and pooled jobs destroyed by
/// an injected panic all return their slabs.
#[test]
fn pool_leak_guard_survives_panics_and_dropped_tickets() {
    let n = 1usize << 10;
    let probe = FftCluster::start(ClusterConfig {
        shards: 2,
        base: small_base(),
        ..ClusterConfig::default()
    });
    let target = probe.shard_for(n);
    probe.shutdown();

    let mut shard_faults = vec![FaultInjector::none(), FaultInjector::none()];
    shard_faults[target] = FaultInjector::panic_on_size(n, 1);
    let cluster = FftCluster::start(ClusterConfig {
        shards: 2,
        shard_faults,
        base: small_base(),
        ..ClusterConfig::default()
    });
    // Round 1: the poisoned dispatch panics; the leased buffers die with
    // their jobs and must still return to the pool.
    let doomed: Vec<Ticket> = (0..2)
        .map(|_| {
            let mut lease = cluster.lease(n);
            lease.copy_from_slice(&signal(n));
            cluster.submit(Request::pooled(lease)).expect("admitted")
        })
        .collect();
    let mut internal = 0;
    for t in doomed {
        match wait_bounded(t) {
            Err(ServeError::Internal { .. }) => internal += 1,
            Ok(_) => {}
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(internal >= 1, "the injected panic must hit something");
    // Round 2: normal pooled round-trips, one response dropped unredeemed.
    for i in 0..4 {
        let mut lease = cluster.lease(n);
        lease.copy_from_slice(&signal(n));
        let ticket = cluster.submit(Request::pooled(lease)).expect("admitted");
        if i == 3 {
            drop(ticket); // never redeemed; the service still settles it
        } else {
            let response = wait_bounded(ticket).expect("completed");
            assert_eq!(response.buffer.len(), n);
        }
    }
    let stats = cluster.shutdown();
    assert_cluster_drained(&stats);
    assert_eq!(
        stats.pool.outstanding, 0,
        "leaked slabs after drain: {:?}",
        stats.pool
    );
    assert_eq!(stats.pool.leased, 6);
    assert!(stats.pool.reused >= 4, "slabs must actually recycle");
}
