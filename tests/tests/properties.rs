//! Randomized property tests: transform identities over random inputs, and
//! structural invariants of random FFT plans. Inputs are drawn from a
//! seeded PRNG so every run checks the same cases deterministically.

use fgfft::plan::FftPlan;
use fgfft::reference::{energy, recursive_fft};
use fgfft::{fft_in_place, rms_error, Complex64, ExecConfig, SeedOrder, Version};
use fgsupport::rng::Rng64;

fn complex_vec(rng: &mut Rng64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::new(rng.gen_range_f64(-1.0..1.0), rng.gen_range_f64(-1.0..1.0)))
        .collect()
}

fn fft(data: &[Complex64]) -> Vec<Complex64> {
    let mut out = data.to_vec();
    fft_in_place(
        &mut out,
        Version::Fine(SeedOrder::Natural),
        &ExecConfig::with_workers(4),
    );
    out
}

/// FFT(x) matches the recursive reference on random inputs.
#[test]
fn matches_reference() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(100 + case);
        let data = complex_vec(&mut rng, 512);
        let expect = recursive_fft(&data);
        let got = fft(&data);
        assert!(rms_error(&got, &expect) < 1e-9, "case {case}");
    }
}

/// Linearity: FFT(a·x + y) = a·FFT(x) + FFT(y).
#[test]
fn linearity() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(200 + case);
        let x = complex_vec(&mut rng, 256);
        let y = complex_vec(&mut rng, 256);
        let a = Complex64::new(rng.gen_range_f64(-2.0..2.0), rng.gen_range_f64(-2.0..2.0));
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx.iter().zip(&fy).map(|(&u, &v)| a * u + v).collect();
        assert!(rms_error(&lhs, &rhs) < 1e-9, "case {case}");
    }
}

/// Parseval: ‖X‖² = N·‖x‖².
#[test]
fn parseval() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(300 + case);
        let data = complex_vec(&mut rng, 1024);
        let freq = fft(&data);
        let lhs = energy(&freq);
        let rhs = energy(&data) * 1024.0;
        assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0), "case {case}");
    }
}

/// Circular time shift ↔ linear phase: FFT(shift(x, s))[k] = X[k]·e^{-2πiks/N}.
#[test]
fn shift_theorem() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(400 + case);
        let data = complex_vec(&mut rng, 256);
        let s = rng.gen_range(0..256);
        let n = data.len();
        let shifted: Vec<Complex64> = (0..n).map(|i| data[(i + s) % n]).collect();
        let fs = fft(&shifted);
        let fx = fft(&data);
        let expect: Vec<Complex64> = fx
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                v * Complex64::expi(2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64)
            })
            .collect();
        assert!(rms_error(&fs, &expect) < 1e-9, "case {case} shift {s}");
    }
}

/// Convolution theorem through the public API.
#[test]
fn convolution_theorem() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(500 + case);
        let a = complex_vec(&mut rng, 48);
        let b = complex_vec(&mut rng, 17);
        let fast = fgfft::convolve(&a, &b);
        let mut direct = vec![Complex64::ZERO; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                direct[i + j] += x * y;
            }
        }
        assert!(rms_error(&fast, &direct) < 1e-9, "case {case}");
    }
}

/// Inverse really inverts, for arbitrary sizes and versions.
#[test]
fn roundtrip() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(600 + case);
        let data = complex_vec(&mut rng, 128);
        let version = if rng.gen_bool() {
            Version::FineGuided
        } else {
            Version::CoarseHash
        };
        let engine = fgfft::Fft::new().with_version(version).with_workers(2);
        let mut v = data.clone();
        engine.forward(&mut v);
        engine.inverse(&mut v);
        assert!(rms_error(&v, &data) < 1e-11, "case {case} {version:?}");
    }
}

/// Plan invariants for random (size, radix) combinations: stages cover
/// all levels, every stage partitions the elements, and the
/// parent/child relations are mutually consistent.
#[test]
#[allow(clippy::needless_range_loop)]
fn plan_invariants() {
    let mut rng = Rng64::seed_from_u64(7001);
    for case in 0..32 {
        let n_log2 = rng.gen_range(2..12) as u32;
        let radix_log2 = rng.gen_range(1..7) as u32;
        let plan = FftPlan::new(n_log2, radix_log2);
        let p = plan.radix_log2();

        // Levels add up to log2 N.
        let total_levels: u32 = (0..plan.stages()).map(|s| plan.levels(s)).sum();
        assert_eq!(total_levels, n_log2, "case {case}");

        // Each stage partitions the element set and owner() agrees.
        for stage in 0..plan.stages() {
            let mut seen = vec![false; plan.n()];
            for idx in 0..plan.codelets_per_stage() {
                plan.for_each_element(stage, idx, |_, e| {
                    assert!(!seen[e]);
                    seen[e] = true;
                    assert_eq!(plan.owner(stage, e), idx);
                });
            }
            assert!(seen.iter().all(|&s| s), "case {case}");
        }

        // Children counts and dependence counts are duals.
        let cps = plan.codelets_per_stage();
        for stage in 0..plan.stages() - 1 {
            let mut dep = vec![0u32; cps];
            let mut kids = Vec::new();
            for idx in 0..cps {
                kids.clear();
                plan.children_of(stage, idx, &mut kids);
                // No duplicate children.
                for w in kids.windows(2) {
                    assert!(w[0] < w[1]);
                }
                for &k in &kids {
                    dep[k - (stage + 1) * cps] += 1;
                }
            }
            for idx in 0..cps {
                assert_eq!(dep[idx], plan.parent_count(stage + 1, idx));
            }
        }

        // Full stages have exactly P parents.
        for stage in 1..plan.stages() {
            if plan.is_full_stage(stage) {
                assert_eq!(plan.parent_count(stage, 0), 1u32 << p);
            }
        }
    }
}

/// Grouped orders (plain and bank-rotated) are permutations, and every
/// run shares its children.
#[test]
fn grouped_orders_are_sound() {
    let mut rng = Rng64::seed_from_u64(7002);
    let mut checked = 0;
    while checked < 24 {
        let n_log2 = rng.gen_range(4..12) as u32;
        let radix_log2 = rng.gen_range(2..5) as u32;
        let plan = FftPlan::new(n_log2, radix_log2);
        if plan.stages() < 2 {
            continue;
        }
        checked += 1;
        for stage in 0..plan.stages() - 1 {
            for order in [
                plan.grouped_stage_order(stage),
                plan.grouped_stage_order_bank_rotated(stage),
            ] {
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..plan.codelets_per_stage()).collect::<Vec<_>>());
            }
            let order = plan.grouped_stage_order(stage);
            let run = plan.grouped_run_len(stage);
            let mut kids_a = Vec::new();
            let mut kids_b = Vec::new();
            for chunk in order.chunks(run) {
                kids_a.clear();
                plan.children_of(stage, chunk[0], &mut kids_a);
                for &idx in &chunk[1..] {
                    kids_b.clear();
                    plan.children_of(stage, idx, &mut kids_b);
                    assert_eq!(kids_a, kids_b);
                }
            }
        }
    }
}

/// Seed orders are permutations for any count.
#[test]
fn seed_orders_are_permutations() {
    let mut rng = Rng64::seed_from_u64(7003);
    for _ in 0..48 {
        let count = rng.gen_range(0..300);
        let seed = rng.gen_u64() % 1000;
        for order in [
            SeedOrder::Natural,
            SeedOrder::Reversed,
            SeedOrder::EvenOdd,
            SeedOrder::Random(seed),
        ] {
            let v = order.order(count);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..count).collect::<Vec<_>>());
        }
    }
}

/// `irfft ∘ rfft` is the identity on random real signals: the packed
/// half-size plan pipeline (r2c untangle, then c2r tangle + finalize)
/// reconstructs every sample to near machine precision.
#[test]
fn real_roundtrip() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(700 + case);
        for n in [16usize, 256, 2048] {
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-1.0..1.0)).collect();
            let back = fgfft::irfft(&fgfft::rfft(&x));
            assert_eq!(back.len(), n, "case {case} n={n}");
            let worst = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(worst < 1e-12, "case {case} n={n}: max err {worst}");
        }
    }
}

/// Parseval for the real transform: the nonredundant half spectrum carries
/// the signal's whole energy once the conjugate-symmetric interior bins are
/// double-counted.
#[test]
fn real_parseval() {
    let n = 1024usize;
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(800 + case);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-1.0..1.0)).collect();
        let spec = fgfft::rfft(&x);
        let sq = |v: &Complex64| v.re * v.re + v.im * v.im;
        let mut lhs = sq(&spec[0]) + sq(&spec[n / 2]);
        for v in &spec[1..n / 2] {
            lhs += 2.0 * sq(v);
        }
        let rhs = n as f64 * x.iter().map(|&s| s * s).sum::<f64>();
        assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0), "case {case}");
    }
}

/// The composite 2D plan (row wave → blocked transpose → column wave →
/// transpose back) is *bitwise* the nested formulation with explicit 1D
/// FFTs and plain transposes: the lowering reorders data movement, never
/// arithmetic.
#[test]
fn fft2d_matches_nested_rows_and_cols() {
    use fgfft::fft2d::transpose;
    use fgfft::{Fft, Fft2d};
    for (rows, cols) in [(16usize, 16usize), (8, 64)] {
        let mut rng = Rng64::seed_from_u64(900 + rows as u64);
        let data = complex_vec(&mut rng, rows * cols);
        let mut got = data.clone();
        Fft2d::new(rows, cols).forward(&mut got);

        let engine = Fft::new();
        let mut nested = data.clone();
        for row in nested.chunks_exact_mut(cols) {
            engine.forward(row);
        }
        let mut t = vec![Complex64::ZERO; rows * cols];
        transpose(&nested, &mut t, rows, cols);
        for col in t.chunks_exact_mut(rows) {
            engine.forward(col);
        }
        transpose(&t, &mut nested, cols, rows);
        for (i, (a, b)) in got.iter().zip(&nested).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "{rows}x{cols} element {i}: {a:?} != {b:?}"
            );
        }
    }
}
