//! Integration tests of the `fgcheck` static analyzer against the real FFT
//! schedules: every shipped version must be provably race-free, a seeded
//! dropped-arc mutation must be caught, and the pass-3 linter must reproduce
//! the paper's Fig. 1 bank-0 observation from addresses alone.

use c64sim::ChipConfig;
use codelet::graph::{CodeletId, CodeletProgram, WithoutSharedGroups};
use codelet::verify;
use fgcheck::{
    check_fft, find_races, FftCheckOptions, HbOrder, Segment, CODE_BANK_IMBALANCE, CODE_RACE,
};
use fgfft::graph::FftGraph;
use fgfft::{FftPlan, FftWorkload, SeedOrder, SimVersion, TwiddleLayout};

const N_LOG2: u32 = 15;

fn all_versions() -> [SimVersion; 5] {
    [
        SimVersion::Coarse,
        SimVersion::CoarseHash,
        SimVersion::Fine(SeedOrder::Natural),
        SimVersion::FineHash(SeedOrder::Natural),
        SimVersion::FineGuided,
    ]
}

fn all_layouts() -> [TwiddleLayout; 3] {
    [
        TwiddleLayout::Linear,
        TwiddleLayout::BitReversedHash,
        TwiddleLayout::MultiplicativeHash,
    ]
}

#[test]
fn every_version_and_layout_is_clean_at_2_15() {
    for version in all_versions() {
        for layout in all_layouts() {
            let report = check_fft(&FftCheckOptions {
                layout: Some(layout),
                ..FftCheckOptions::new(N_LOG2, version)
            });
            assert!(
                !report.has_errors(),
                "{} / {:?}:\n{}",
                version.name(),
                layout,
                report.render_text()
            );
            assert!(
                report.races.is_clean(),
                "{} / {layout:?} races",
                version.name()
            );
            assert!(
                !verify::has_errors(&report.contract),
                "{} / {layout:?} contract",
                version.name()
            );
        }
    }
}

#[test]
fn seed_orders_are_all_clean() {
    // The race freedom of the fine version must not depend on the seeding
    // order of the ready pool.
    for order in [
        SeedOrder::Natural,
        SeedOrder::Reversed,
        SeedOrder::EvenOdd,
        SeedOrder::Random(7),
    ] {
        let report = check_fft(&FftCheckOptions::new(N_LOG2, SimVersion::Fine(order)));
        assert!(!report.has_errors(), "{order:?}:\n{}", report.render_text());
    }
}

/// Wrapper that deletes one dependence arc `from -> to` *consistently*
/// (both the arc and the dependence count), modeling the classic fine-grain
/// porting bug: the graph still satisfies the pass-1 contract — counts match
/// arcs, everything fires — but the ordering the arc provided is gone.
struct DropEdge<P> {
    inner: P,
    from: CodeletId,
    to: CodeletId,
}

impl<P: CodeletProgram> CodeletProgram for DropEdge<P> {
    fn num_codelets(&self) -> usize {
        self.inner.num_codelets()
    }

    fn dep_count(&self, id: CodeletId) -> u32 {
        self.inner.dep_count(id) - (id == self.to) as u32
    }

    fn dependents(&self, id: CodeletId, out: &mut Vec<CodeletId>) {
        if id != self.from {
            return self.inner.dependents(id, out);
        }
        let start = out.len();
        self.inner.dependents(id, out);
        if let Some(pos) = out[start..].iter().position(|&c| c == self.to) {
            out.remove(start + pos);
        }
    }

    fn initial_ready(&self) -> Vec<CodeletId> {
        self.inner.initial_ready()
    }
}

#[test]
fn dropped_arc_passes_the_contract_but_is_flagged_as_a_race() {
    let plan = FftPlan::new(12, 6);
    let chip = ChipConfig::cyclops64();
    let workload = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);

    // Pick a real arc: the first stage-1 codelet and one of its parents.
    // Shared-counter groups are stripped first — with them in place the
    // group counter would re-order the pair via the parent's other arcs.
    let base = WithoutSharedGroups(FftGraph::new(plan));
    let child = plan.codelet_id(1, 0);
    let mut kids = Vec::new();
    let parent = (0..plan.codelets_per_stage())
        .find(|&idx| {
            kids.clear();
            base.dependents(plan.codelet_id(0, idx), &mut kids);
            kids.contains(&child)
        })
        .map(|idx| plan.codelet_id(0, idx))
        .expect("stage-1 codelet must have a stage-0 parent");

    let sane_races = {
        let (hb, cov) = HbOrder::build(
            base.num_codelets(),
            &[Segment::Graph {
                program: &base,
                seeds: base.initial_ready(),
            }],
        );
        assert!(cov.is_empty());
        find_races(base.num_codelets(), |t| workload.footprint(t), &hb)
    };
    assert!(sane_races.is_clean(), "unmutated graph must be race-free");

    let mutated = DropEdge {
        inner: base,
        from: parent,
        to: child,
    };
    // Pass 1 cannot see the bug: counts and arcs were edited consistently.
    let contract = verify::check_program(&mutated);
    assert!(
        !verify::has_errors(&contract),
        "mutation must be contract-clean:\n{}",
        verify::render(&contract)
    );
    // Pass 2 does: parent writes elements the child reads, now unordered.
    let (hb, cov) = HbOrder::build(
        mutated.num_codelets(),
        &[Segment::Graph {
            seeds: mutated.initial_ready(),
            program: &mutated,
        }],
    );
    assert!(cov.is_empty());
    let races = find_races(mutated.num_codelets(), |t| workload.footprint(t), &hb);
    assert!(!races.is_clean(), "dropped arc must race");
    assert!(
        races
            .pairs
            .iter()
            .any(|&(a, b, _)| (a, b) == (parent.min(child), parent.max(child))),
        "the racing pair must be the severed arc {parent}->{child}, got {:?}",
        races.pairs
    );
    assert!(races.diagnostics().iter().all(|d| d.code == CODE_RACE));
}

#[test]
fn removing_the_stage_barrier_races() {
    // The coarse schedule collapsed to a single phase: stage s+1 codelets
    // read what stage s writes with nothing ordering them.
    let plan = FftPlan::new(12, 6);
    let chip = ChipConfig::cyclops64();
    let workload = FftWorkload::new(plan, TwiddleLayout::Linear, &chip);
    let n = plan.total_codelets();
    let (hb, _) = HbOrder::build(n, &[Segment::Stages(vec![(0..n).collect()])]);
    let races = find_races(n, |t| workload.footprint(t), &hb);
    assert!(
        !races.is_clean(),
        "a barrier-free coarse schedule must race"
    );
}

#[test]
fn linear_layout_draws_the_bank_zero_lint_and_hashed_does_not() {
    let linear = check_fft(&FftCheckOptions::new(N_LOG2, SimVersion::Coarse));
    // Fig. 1 as a lint: the early stages' twiddle wave rides on bank 0.
    assert!(
        !linear.bank_lint.is_empty(),
        "linear twiddles at 2^{N_LOG2} must trip the bank linter"
    );
    assert!(linear
        .bank_lint
        .iter()
        .all(|d| d.code == CODE_BANK_IMBALANCE));
    assert!(
        linear.bank_lint[0].message.starts_with("level 0:"),
        "stage 0 must be flagged: {}",
        linear.bank_lint[0].message
    );
    let row0 = &linear.bank.hist[0];
    let peak = row0.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
    assert_eq!(peak, 0, "stage-0 peak bank must be bank 0: {row0:?}");
    // Warnings, not errors: the schedule is still *correct*.
    assert!(!linear.has_errors());

    let hashed = check_fft(&FftCheckOptions::new(N_LOG2, SimVersion::CoarseHash));
    assert!(
        hashed.bank_lint.is_empty(),
        "hashed layout must silence the linter, got: {}",
        verify::render(&hashed.bank_lint)
    );
}

#[test]
fn report_renders_and_serializes() {
    let report = check_fft(&FftCheckOptions::new(12, SimVersion::FineGuided));
    let text = report.render_text();
    assert!(text.contains("fine guided"));
    assert!(text.contains("races: none"));
    let json = report.to_json().to_string();
    let parsed = fgsupport::json::parse(&json).expect("valid JSON");
    assert_eq!(
        parsed.get("clean"),
        Some(&fgsupport::json::Value::Bool(true)),
        "{json}"
    );
    assert_eq!(parsed.get("n_log2").and_then(|v| v.as_u64()), Some(12));
}

#[test]
fn guided_levels_match_the_stage_structure() {
    let report = check_fft(&FftCheckOptions::new(N_LOG2, SimVersion::FineGuided));
    let plan = FftPlan::new(N_LOG2, 6);
    assert_eq!(report.bank.hist.len(), plan.stages());
    // Every stage level carries traffic.
    for level in 0..plan.stages() {
        assert!(
            report.bank.imbalance(level).is_some(),
            "level {level} empty"
        );
    }
}

/// Full-size acceptance run (paper scale, N = 2^20). ~512 MB of ancestor
/// bitsets for the fine graphs; run with `--release -- --ignored`.
#[test]
#[ignore = "large: run with --release -- --ignored"]
fn every_version_is_clean_at_paper_scale() {
    for version in all_versions() {
        let report = check_fft(&FftCheckOptions::new(20, version));
        assert!(
            !report.has_errors(),
            "{}:\n{}",
            version.name(),
            report.render_text()
        );
        assert!(report.races.is_clean(), "{}", version.name());
    }
    // And the motivating skew is visible at full scale too.
    let coarse = check_fft(&FftCheckOptions::new(20, SimVersion::Coarse));
    let row0 = &coarse.bank.hist[0];
    let peak = row0.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
    assert_eq!(peak, 0, "stage-0 peak bank at 2^20: {row0:?}");
    assert!(!coarse.bank_lint.is_empty());
}
