//! End-to-end numerical correctness of every executor against the
//! reference oracles, across sizes, radices, worker counts, and versions.

use fgfft::reference::{naive_dft, recursive_fft};
use fgfft::{fft_in_place, rms_error, Complex64, ExecConfig, Fft, SeedOrder, Version};

fn signal(n: usize, phase: f64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            Complex64::new(
                (i as f64 * 0.37 + phase).sin(),
                (i as f64 * 0.101 - phase).cos() * 0.7,
            )
        })
        .collect()
}

fn all_versions() -> Vec<Version> {
    vec![
        Version::Coarse,
        Version::CoarseHash,
        Version::Fine(SeedOrder::Natural),
        Version::Fine(SeedOrder::Reversed),
        Version::Fine(SeedOrder::EvenOdd),
        Version::Fine(SeedOrder::Random(3)),
        Version::FineHash(SeedOrder::Natural),
        Version::FineGuided,
    ]
}

#[test]
fn all_versions_match_dft_small() {
    let n = 256;
    let input = signal(n, 0.0);
    let expect = naive_dft(&input);
    for version in all_versions() {
        let mut data = input.clone();
        fft_in_place(&mut data, version, &ExecConfig::with_workers(3));
        let err = rms_error(&data, &expect);
        assert!(err < 1e-9, "{}: rms {err}", version.name());
    }
}

#[test]
fn all_versions_match_recursive_fft_large() {
    // 2^16 with radix 64 → 3 stages (guided path has a real split).
    let n = 1 << 16;
    let input = signal(n, 1.5);
    let expect = recursive_fft(&input);
    for version in all_versions() {
        let mut data = input.clone();
        fft_in_place(&mut data, version, &ExecConfig::with_workers(8));
        let err = rms_error(&data, &expect);
        assert!(err < 1e-8, "{}: rms {err}", version.name());
    }
}

#[test]
fn worker_counts_do_not_change_results() {
    let n = 1 << 13;
    let input = signal(n, 0.3);
    let mut reference = input.clone();
    fft_in_place(
        &mut reference,
        Version::Fine(SeedOrder::Natural),
        &ExecConfig::with_workers(1),
    );
    for workers in [2, 3, 5, 8, 16] {
        for version in [Version::Fine(SeedOrder::Natural), Version::FineGuided] {
            let mut data = input.clone();
            fft_in_place(&mut data, version, &ExecConfig::with_workers(workers));
            assert_eq!(
                data,
                reference,
                "{} with {workers} workers diverged bitwise",
                version.name()
            );
        }
    }
}

#[test]
fn every_radix_agrees_with_every_version() {
    let n = 1 << 12;
    let input = signal(n, 2.1);
    let expect = recursive_fft(&input);
    for radix_log2 in [2u32, 4, 6, 7] {
        for version in [
            Version::Coarse,
            Version::Fine(SeedOrder::Natural),
            Version::FineGuided,
        ] {
            let mut data = input.clone();
            let cfg = ExecConfig {
                workers: 4,
                radix_log2,
            };
            fft_in_place(&mut data, version, &cfg);
            let err = rms_error(&data, &expect);
            assert!(
                err < 1e-9,
                "{} radix 2^{radix_log2}: rms {err}",
                version.name()
            );
        }
    }
}

#[test]
fn forward_inverse_roundtrip_many_sizes() {
    for n_log2 in [1u32, 2, 5, 8, 11, 14] {
        let n = 1usize << n_log2;
        let input = signal(n, 0.9);
        let engine = Fft::new().with_workers(4);
        let mut data = input.clone();
        engine.forward(&mut data);
        engine.inverse(&mut data);
        let err = rms_error(&data, &input);
        assert!(err < 1e-11, "n=2^{n_log2}: roundtrip rms {err}");
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let n = 1 << 14;
    let input = signal(n, 0.5);
    let engine = Fft::new().with_workers(8);
    let mut a = input.clone();
    engine.forward(&mut a);
    for _ in 0..3 {
        let mut b = input.clone();
        engine.forward(&mut b);
        assert_eq!(a, b, "nondeterministic result");
    }
}

#[test]
fn known_transform_pairs() {
    // Constant → impulse.
    let n = 1024;
    let mut data = vec![Complex64::ONE; n];
    fgfft::forward(&mut data);
    assert!(data[0].dist(Complex64::new(n as f64, 0.0)) < 1e-9);
    assert!(data[1..].iter().all(|v| v.abs() < 1e-9));

    // Single tone → single bin.
    let k0 = 77;
    let mut data: Vec<Complex64> = (0..n)
        .map(|j| Complex64::expi(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
        .collect();
    fgfft::forward(&mut data);
    assert!(data[k0].dist(Complex64::new(n as f64, 0.0)) < 1e-8);
    let leak: f64 = data
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != k0)
        .map(|(_, v)| v.abs())
        .fold(0.0, f64::max);
    assert!(leak < 1e-8, "spectral leakage {leak}");
}

#[test]
fn conjugate_symmetry_for_real_input() {
    let n = 512;
    let mut data: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.21).sin(), 0.0))
        .collect();
    fgfft::forward(&mut data);
    for k in 1..n / 2 {
        assert!(
            data[k].dist(data[n - k].conj()) < 1e-9,
            "X[{k}] != conj(X[{}])",
            n - k
        );
    }
}
