//! Cross-crate autotuning tests: the wisdom lifecycle (round-trip,
//! corruption tolerance, fingerprint scoping, concurrent planner readers),
//! the guarantee that tuned schedules pass every fgcheck pass, and an
//! end-to-end tuner smoke run whose wisdom a second planner loads.

use fgcheck::{check_fft_tuned, FftCheckOptions};
use fgfft::exec::{SeedOrder, Version};
use fgfft::planner::{PlanKey, Planner};
use fgfft::wisdom::{machine_fingerprint, Wisdom, WisdomEntry, WisdomStatus};
use fgfft::{Complex64, ScheduleTuning, TwiddleLayout};
use fgtune::{tune, TuneConfig, TuningSpace};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Fresh per-test scratch dir (process id + test name keeps parallel test
/// binaries and threads apart).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgfft-tune-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn entry(n_log2: u32, version: Version) -> WisdomEntry {
    let cps = 1usize << (n_log2 - 6);
    let key = PlanKey::new(1 << n_log2, version, version.layout());
    let tuning = ScheduleTuning {
        pool_order: Some((0..cps).rev().collect()),
        last_early: None,
        transpose_block_log2: None,
    };
    // Certified, as on-disk wisdom must be under the default load policy.
    let cert = fgfft::cert::Certificate::for_plan(&fgfft::Plan::build_tuned(key, Some(&tuning)))
        .expect("tuning is valid");
    WisdomEntry {
        key,
        tuning,
        workers: 2,
        batch: 4,
        backend: Default::default(),
        median_ns: 1_000,
        seed_median_ns: 2_000,
        cert: Some(cert),
    }
}

#[test]
fn wisdom_round_trips_through_a_file() {
    let dir = scratch("roundtrip");
    let path = dir.join("wisdom.json");
    let mut wisdom = Wisdom::new();
    wisdom.insert(entry(12, Version::FineGuided));
    wisdom.insert(entry(13, Version::FineHash(SeedOrder::Natural)));
    wisdom.save(&path).expect("save");
    let (loaded, status) = Wisdom::load(&path);
    assert_eq!(status, WisdomStatus::Loaded { entries: 2 });
    assert_eq!(loaded, wisdom);
    // Reload → re-save is a fixed point: bit-identical bytes.
    let original = std::fs::read_to_string(&path).unwrap();
    loaded.save(&path).expect("re-save");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), original);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_truncated_wisdom_fall_back_without_panic() {
    let dir = scratch("corrupt");
    for (name, bytes) in [
        ("garbage.json", b"\x00\x01not json at all".to_vec()),
        ("empty.json", Vec::new()),
        ("wrong-shape.json", b"[1, 2, 3]".to_vec()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        let (wisdom, status) = Wisdom::load(&path);
        assert_eq!(status, WisdomStatus::Corrupt, "{name}");
        assert!(wisdom.is_empty(), "{name}: fell back to empty");
    }
    // Truncation mid-entry: same graceful fallback.
    let mut full = Wisdom::new();
    full.insert(entry(12, Version::FineGuided));
    let text = full.to_json().to_string_pretty();
    let path = dir.join("truncated.json");
    std::fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();
    assert_eq!(Wisdom::load(&path).1, WisdomStatus::Corrupt);
    // And a planner pointed at any of these keeps serving seed plans.
    let planner = Planner::new();
    assert_eq!(planner.load_wisdom(&path), WisdomStatus::Corrupt);
    let plan = planner.plan(1 << 12, Version::FineGuided, TwiddleLayout::Linear);
    assert!(plan.tuning().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_fingerprint_is_ignored_wholesale() {
    let dir = scratch("fingerprint");
    let path = dir.join("foreign.json");
    let mut foreign = Wisdom::with_fingerprint("decommissioned-box-64t".to_string());
    foreign.insert(entry(12, Version::FineGuided));
    foreign.save(&path).expect("save");
    assert_ne!(foreign.fingerprint(), machine_fingerprint());
    let (loaded, status) = Wisdom::load(&path);
    assert_eq!(status, WisdomStatus::FingerprintMismatch);
    assert!(
        loaded.is_empty(),
        "foreign measurements must not be trusted"
    );
    let planner = Planner::new();
    assert_eq!(
        planner.load_wisdom(&path),
        WisdomStatus::FingerprintMismatch
    );
    assert!(planner.wisdom().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// Many planners in many threads load the same wisdom file concurrently
/// while one thread atomically re-saves it: every load must see a
/// complete document (old or new — never torn), and tuned plan execution
/// must stay bit-identical to untuned.
#[test]
fn concurrent_planner_readers_of_one_wisdom_file() {
    const READERS: usize = 8;
    let dir = scratch("concurrent");
    let path = dir.join("wisdom.json");
    let mut wisdom = Wisdom::new();
    wisdom.insert(entry(10, Version::FineGuided));
    wisdom.save(&path).expect("save");

    let barrier = Arc::new(Barrier::new(READERS + 1));
    let path = Arc::new(path);
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let path = Arc::clone(&path);
            std::thread::spawn(move || {
                barrier.wait();
                let mut statuses = Vec::new();
                for _ in 0..20 {
                    let planner = Planner::new();
                    statuses.push(planner.load_wisdom(&path));
                    let plan = planner.plan(1 << 10, Version::FineGuided, TwiddleLayout::Linear);
                    // Whether this load raced the writer into old or new
                    // wisdom, the plan must carry *a* valid tuning.
                    assert!(plan.tuning().is_some());
                }
                statuses
            })
        })
        .collect();
    let writer = {
        let barrier = Arc::clone(&barrier);
        let path = Arc::clone(&path);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..20 {
                let mut w = Wisdom::new();
                let mut e = entry(10, Version::FineGuided);
                e.median_ns = 1_000 + i;
                w.insert(e);
                w.save(&path).expect("atomic re-save");
            }
        })
    };
    writer.join().expect("writer");
    for reader in readers {
        for status in reader.join().expect("reader") {
            assert!(
                matches!(status, WisdomStatus::Loaded { entries: 1 }),
                "a concurrent load saw a torn file: {status:?}"
            );
        }
    }
    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("fgfft-tune-{}-concurrent", std::process::id())),
    )
    .ok();
}

/// A tuned pool-order permutation — the schedule the tuner would emit —
/// passes all three fgcheck passes for every fine-grain version, and so
/// does a tuned guided split.
#[test]
fn tuned_schedules_pass_all_three_fgcheck_passes() {
    let n_log2 = 12;
    let cps = 1usize << (n_log2 - 6);
    // A deliberately scrambled (but valid) permutation.
    let scrambled: Vec<usize> = SeedOrder::Random(0xBADC0DE).order(cps);
    for version in [
        Version::Fine(SeedOrder::Natural),
        Version::FineHash(SeedOrder::Natural),
        Version::FineGuided,
        Version::Coarse,
        Version::CoarseHash,
    ] {
        let tuning = ScheduleTuning {
            pool_order: Some(scrambled.clone()),
            last_early: if version == Version::FineGuided {
                Some(0)
            } else {
                None
            },
            transpose_block_log2: None,
        };
        let report = check_fft_tuned(&FftCheckOptions::new(n_log2, version), Some(&tuning));
        assert!(
            !report.has_errors(),
            "{version:?} with tuned schedule fails static checks:\n{}",
            report.render_text()
        );
    }
}

/// End-to-end: a short tuner run writes wisdom; a *second* planner (as a
/// separate process would) loads it, builds tuned plans, and executes
/// bit-identically to the seed schedule.
#[test]
fn tuner_smoke_wisdom_reloads_into_a_fresh_planner() {
    let dir = scratch("smoke");
    let path = dir.join("wisdom.json");

    let space = TuningSpace::new(9, 6);
    let outcome = tune(
        &space,
        &TuneConfig {
            budget: Duration::from_millis(300),
            seed: 5,
            reps: 2,
            max_candidates: 48,
        },
    );
    assert!(!outcome.wisdom.is_empty());
    assert!(outcome.report.best.median_ns <= outcome.report.seed_median_ns());
    outcome.wisdom.save(&path).expect("save wisdom");

    // Fresh planner, as a new process would start.
    let planner = Planner::new();
    let status = planner.load_wisdom(&path);
    assert!(matches!(status, WisdomStatus::Loaded { .. }), "{status:?}");
    for entry in outcome.wisdom.entries() {
        let tuned = planner.plan_key(entry.key);
        assert_eq!(
            tuned.tuning(),
            Some(&entry.tuning),
            "plan carries the wisdom tuning"
        );
        // Tuned execution is bit-identical to a fresh untuned build.
        let n = entry.key.n();
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.19).cos()))
            .collect();
        let rt = codelet::runtime::Runtime::with_workers(entry.workers.max(1));
        let mut tuned_out = input.clone();
        tuned.execute(&mut tuned_out, &rt);
        let mut seed_out = input;
        fgfft::Plan::build(entry.key).execute(&mut seed_out, &rt);
        assert_eq!(
            tuned_out, seed_out,
            "{:?}: tuning changed results",
            entry.key
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
