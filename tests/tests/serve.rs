//! Cross-crate serving-layer tests: the plan cache's single-flight
//! guarantee under thread hammering, admission-control backpressure,
//! end-to-end correctness of batched service execution, and the
//! panic-safety guarantees — injected panics, dispatcher supervision,
//! and the post-drain accounting identity
//! `accepted == completed + deadline_missed + failed`.

use fgfft::exec::Version;
use fgfft::planner::{Plan, PlanKey, Planner};
use fgfft::{rms_error, Complex64, TwiddleLayout};
use fgserve::{FaultInjector, FftService, Request, ServeConfig, ServeError, ServeStats, Ticket};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Every shutdown, however many faults were injected, must satisfy the
/// accounting identity: nothing admitted is ever lost or double-counted.
fn assert_drained(stats: &ServeStats) {
    assert_eq!(
        stats.accepted,
        stats.completed + stats.deadline_missed + stats.failed,
        "accounting identity violated: {stats:?}"
    );
}

/// Redeem a ticket with a hang guard: a wedged service fails the test
/// instead of hanging it.
fn wait_bounded(ticket: Ticket) -> Result<fgserve::Response, ServeError> {
    ticket
        .wait_timeout(Duration::from_secs(60))
        .expect("ticket not completed within 60 s — the no-hang guarantee is broken")
}

fn signal(n: usize, phase: f64) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.11 + phase).sin(), (i as f64 * 0.07).cos()))
        .collect()
}

/// ≥ 8 threads hammer the planner on a handful of distinct keys through a
/// start barrier (maximum miss contention): every distinct key must be
/// built exactly once (single-flight), every thread must get the same
/// `Arc`, and execution through the cached plan must be bit-identical to an
/// uncached `Plan::build`.
#[test]
fn planner_single_flight_under_hammering() {
    const THREADS: usize = 12;
    let keys: Vec<PlanKey> = vec![
        PlanKey::new(1 << 10, Version::FineGuided, TwiddleLayout::Linear),
        PlanKey::new(1 << 11, Version::FineGuided, TwiddleLayout::Linear),
        PlanKey::new(1 << 12, Version::Coarse, TwiddleLayout::Linear),
        PlanKey::new(1 << 12, Version::CoarseHash, TwiddleLayout::BitReversedHash),
    ];
    let planner = Arc::new(Planner::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let planner = Arc::clone(&planner);
            let barrier = Arc::clone(&barrier);
            let keys = keys.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // Every thread requests every key, repeatedly, starting at a
                // different offset so all keys see simultaneous first misses.
                let mut got = Vec::new();
                for round in 0..20 {
                    let key = keys[(t + round) % keys.len()];
                    got.push((key, planner.plan_key(key)));
                }
                got
            })
        })
        .collect();
    let mut by_key: Vec<(PlanKey, Vec<Arc<Plan>>)> =
        keys.iter().map(|&k| (k, Vec::new())).collect();
    for h in handles {
        for (key, plan) in h.join().expect("no panics") {
            by_key
                .iter_mut()
                .find(|(k, _)| *k == key)
                .expect("known key")
                .1
                .push(plan);
        }
    }
    // Exactly one construction per distinct key, shared by everyone.
    let stats = planner.stats();
    assert_eq!(stats.built, keys.len() as u64, "single-flight violated");
    assert_eq!(stats.cached_plans, keys.len() as u64);
    assert_eq!(stats.hits + stats.misses, (THREADS * 20) as u64);
    for (key, plans) in &by_key {
        for plan in plans {
            assert!(
                Arc::ptr_eq(plan, &plans[0]),
                "{key:?}: threads saw different plan instances"
            );
        }
    }
    // Cached execution is bit-identical to an uncached build.
    let rt = codelet::runtime::Runtime::with_workers(4);
    for (key, plans) in &by_key {
        let input = signal(key.n(), 0.4);
        let mut cached = input.clone();
        plans[0].execute(&mut cached, &rt);
        let mut fresh = input;
        Plan::build(*key).execute(&mut fresh, &rt);
        assert_eq!(cached, fresh, "{key:?}: cached path diverged");
    }
}

/// Same-key hammering from many threads with *no* pre-population: however
/// the misses interleave, only one thread may construct.
#[test]
fn planner_builds_once_for_one_hot_key() {
    const THREADS: usize = 16;
    let planner = Arc::new(Planner::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let planner = Arc::clone(&planner);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                planner.plan(1 << 12, Version::FineGuided, TwiddleLayout::Linear)
            })
        })
        .collect();
    let plans: Vec<Arc<Plan>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(planner.stats().built, 1, "exactly one construction");
    assert!(plans.iter().all(|p| Arc::ptr_eq(p, &plans[0])));
}

/// A saturated service must reject with `Overloaded` instead of blocking,
/// and `serve_stats` must account for every observed rejection.
#[test]
fn saturated_service_rejects_with_overloaded() {
    // One dispatcher on a tiny queue; the first job is slow enough
    // (large transform) that submissions outrun the drain.
    let service = FftService::start(ServeConfig {
        queue_capacity: 4,
        max_batch: 1,
        workers: 1,
        dispatchers: 1,
        ..ServeConfig::default()
    });
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut observed_rejections = 0u64;
    let start = Instant::now();
    // Push until we have seen a healthy number of rejections (bounded by
    // time so a pathologically fast drain cannot hang the test).
    while observed_rejections < 8 && start.elapsed() < Duration::from_secs(20) {
        match service.submit(Request::new(signal(1 << 14, 0.0))) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { queue_capacity, .. }) => {
                assert_eq!(queue_capacity, 4);
                observed_rejections += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        observed_rejections >= 8,
        "queue of 4 with a slow consumer must overflow"
    );
    let accepted = tickets.len() as u64;
    for t in tickets {
        t.wait().expect("accepted requests complete");
    }
    let stats = service.shutdown();
    assert_eq!(
        stats.rejected, observed_rejections,
        "stats must match client-observed rejections"
    );
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.completed, accepted);
    assert!(
        stats.queue_high_water <= 4,
        "high-water cannot exceed bound"
    );
}

/// Concurrent clients through the service: every response is bit-identical
/// to the engine path, and batching actually happened.
#[test]
fn concurrent_clients_get_exact_results() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 6;
    let n = 1 << 11;
    let service = Arc::new(FftService::start(ServeConfig {
        queue_capacity: 128,
        max_batch: 8,
        workers: 2,
        dispatchers: 2,
        ..ServeConfig::default()
    }));
    // Reference results computed through the uncached path.
    let rt = codelet::runtime::Runtime::with_workers(2);
    let reference: Vec<Vec<Complex64>> = (0..CLIENTS * PER_CLIENT)
        .map(|i| {
            let mut d = signal(n, i as f64);
            Plan::build(PlanKey::new(n, Version::FineGuided, TwiddleLayout::Linear))
                .execute(&mut d, &rt);
            d
        })
        .collect();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let mismatches = Arc::clone(&mismatches);
            let reference: Vec<Vec<Complex64>> = (0..PER_CLIENT)
                .map(|r| reference[c * PER_CLIENT + r].clone())
                .collect();
            std::thread::spawn(move || {
                barrier.wait();
                for (r, expect) in reference.iter().enumerate() {
                    let i = c * PER_CLIENT + r;
                    let response = service
                        .submit(Request::new(signal(n, i as f64)))
                        .expect("queue sized for the offered load")
                        .wait()
                        .expect("transform succeeds");
                    if response.buffer != *expect {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client panicked");
    }
    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "served ≠ uncached");
    let service = Arc::into_inner(service).expect("all clients done");
    let stats = service.shutdown();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.planner.built, 1, "one size ⇒ one plan");
    assert!(
        stats.planner.hit_rate() > 0.9,
        "steady same-size traffic must be nearly all cache hits (got {})",
        stats.planner.hit_rate()
    );
}

/// The service path and the one-shot `fgfft::forward` agree numerically.
#[test]
fn service_matches_reference_fft() {
    let n = 1 << 9;
    let input = signal(n, 1.7);
    let expect = fgfft::reference::recursive_fft(&input);
    let service = FftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let response = service
        .submit(Request::new(input))
        .expect("admitted")
        .wait()
        .expect("completed");
    assert!(rms_error(&response.buffer, &expect) < 1e-9);
    service.shutdown();
}

/// The acceptance scenario for panic-safe serving: one dispatcher, an
/// injected panic in the first dispatch. Every previously-submitted ticket
/// must complete (no `wait` hang), `failed` must be positive, the service
/// must still serve a correct transform afterwards, and after drain the
/// accounting identity must hold.
#[test]
fn injected_panic_never_hangs_tickets_and_service_recovers() {
    let n = 1 << 9;
    let fault = FaultInjector::panic_on_batch(1);
    let service = FftService::start(ServeConfig {
        queue_capacity: 32,
        max_batch: 4,
        workers: 2,
        dispatchers: 1,
        fault: fault.clone(),
        ..ServeConfig::default()
    });
    // A burst submitted up front: some land in the poisoned first batch,
    // the rest are served by the surviving dispatcher.
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| {
            service
                .submit(Request::new(signal(n, i as f64)))
                .expect("admitted")
        })
        .collect();
    let mut failures = 0u64;
    for t in tickets {
        match wait_bounded(t) {
            Ok(response) => assert_eq!(response.buffer.len(), n),
            Err(ServeError::Internal { reason }) => {
                assert!(reason.contains("injected fault"), "reason: {reason}");
                failures += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(failures > 0, "the injected panic must have failed someone");
    assert_eq!(fault.fired(), 1);

    // Continued correct service after the panic.
    let input = signal(n, 99.0);
    let expect = fgfft::reference::recursive_fft(&input);
    let response = wait_bounded(service.submit(Request::new(input)).expect("admitted"))
        .expect("service recovered");
    assert!(rms_error(&response.buffer, &expect) < 1e-9);

    let stats = service.shutdown();
    assert_eq!(stats.failed, failures);
    assert!(stats.failed > 0);
    assert_eq!(
        stats.dispatcher_restarts, 0,
        "guarded panic keeps the thread"
    );
    assert_drained(&stats);
}

/// A size-targeted fault fails only that size's groups; other sizes served
/// by the same dispatchers are untouched.
#[test]
fn panic_on_one_size_spares_other_sizes() {
    let poisoned_n = 1 << 8;
    let healthy_n = 1 << 10;
    let fault = FaultInjector::panic_on_size(poisoned_n, u64::MAX);
    let service = FftService::start(ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        workers: 2,
        dispatchers: 1,
        fault,
        ..ServeConfig::default()
    });
    let tickets: Vec<(usize, Ticket)> = (0..10)
        .map(|i| {
            let n = if i % 2 == 0 { poisoned_n } else { healthy_n };
            (
                n,
                service
                    .submit(Request::new(signal(n, i as f64)))
                    .expect("admitted"),
            )
        })
        .collect();
    for (n, t) in tickets {
        let outcome = wait_bounded(t);
        if n == poisoned_n {
            assert!(
                matches!(outcome, Err(ServeError::Internal { .. })),
                "poisoned size must fail, got {outcome:?}"
            );
        } else {
            assert_eq!(outcome.expect("healthy size serves").buffer.len(), n);
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.failed, 5);
    assert_eq!(stats.completed, 5);
    assert_drained(&stats);
}

/// Defense in depth: a panic *outside* the dispatch guard kills the
/// dispatcher thread. The jobs it held must still complete (drop-guard),
/// the supervisor must respawn the thread within its budget, and service
/// must continue.
#[test]
fn killed_dispatcher_is_respawned_by_supervisor() {
    let n = 1 << 9;
    let fault = FaultInjector::kill_dispatcher_on_batch(1);
    let service = FftService::start(ServeConfig {
        queue_capacity: 32,
        max_batch: 4,
        workers: 2,
        dispatchers: 1,
        max_dispatcher_restarts: 2,
        fault: fault.clone(),
        ..ServeConfig::default()
    });
    let tickets: Vec<Ticket> = (0..6)
        .map(|i| {
            service
                .submit(Request::new(signal(n, i as f64)))
                .expect("admitted")
        })
        .collect();
    let mut abandoned = 0u64;
    for t in tickets {
        match wait_bounded(t) {
            Ok(_) => {}
            Err(ServeError::Internal { .. }) => abandoned += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(fault.fired() >= 1, "the kill fault must have tripped");
    assert!(
        abandoned >= 1,
        "the killed dispatcher held at least one job; its drop-guard must fail it"
    );
    // The respawned dispatcher keeps serving.
    let input = signal(n, 7.5);
    let expect = fgfft::reference::recursive_fft(&input);
    let response = wait_bounded(service.submit(Request::new(input)).expect("admitted"))
        .expect("respawned dispatcher serves");
    assert!(rms_error(&response.buffer, &expect) < 1e-9);
    let stats = service.shutdown();
    assert!(
        stats.dispatcher_restarts >= 1,
        "supervisor must record the respawn: {stats:?}"
    );
    assert_eq!(stats.failed, abandoned);
    assert_drained(&stats);
}

/// Repeated injected panics (N faults over the run): the service keeps
/// recovering, every ticket settles, and the identity holds at drain.
#[test]
fn service_survives_repeated_injected_panics() {
    const FAULTS: u64 = 5;
    let n = 1 << 8;
    let fault = FaultInjector::panic_on_size(n, FAULTS);
    let service = FftService::start(ServeConfig {
        queue_capacity: 32,
        max_batch: 1, // one request per dispatch: each fault hits one ticket
        workers: 2,
        dispatchers: 1,
        fault: fault.clone(),
        ..ServeConfig::default()
    });
    let mut failed = 0u64;
    let mut completed = 0u64;
    for i in 0..(FAULTS + 3) {
        let outcome = wait_bounded(
            service
                .submit(Request::new(signal(n, i as f64)))
                .expect("admitted"),
        );
        match outcome {
            Ok(_) => completed += 1,
            Err(ServeError::Internal { .. }) => failed += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(fault.fired(), FAULTS, "every configured fault fired");
    assert_eq!(failed, FAULTS);
    assert_eq!(completed, 3, "requests after the budget are served");
    let stats = service.shutdown();
    assert_eq!(stats.failed, FAULTS);
    assert_drained(&stats);
}

/// Multi-dispatcher smoke under adversity: several dispatchers, concurrent
/// clients, mixed sizes, expired deadlines, and injected size-targeted
/// panics all at once. Every ticket settles, successful responses are
/// numerically correct, and the drain identity holds.
#[test]
fn multi_dispatcher_mixed_load_with_faults_and_deadlines() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 8;
    let poisoned_n = 1 << 8;
    let sizes = [1 << 8, 1 << 9, 1 << 10];
    let fault = FaultInjector::panic_on_size(poisoned_n, 3);
    let service = Arc::new(FftService::start(ServeConfig {
        queue_capacity: 256,
        max_batch: 4,
        workers: 2,
        dispatchers: 3,
        fault,
        ..ServeConfig::default()
    }));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut outcomes = Vec::new();
                for r in 0..PER_CLIENT {
                    let i = c * PER_CLIENT + r;
                    let n = sizes[i % sizes.len()];
                    let input = signal(n, i as f64);
                    let expect = fgfft::reference::recursive_fft(&input);
                    let mut request = Request::new(input);
                    // Every 4th request carries an already-expired deadline.
                    if i % 4 == 3 {
                        request = request.with_deadline(Instant::now() - Duration::from_secs(1));
                    }
                    let ticket = service.submit(request).expect("queue sized for the load");
                    let outcome = ticket
                        .wait_timeout(Duration::from_secs(60))
                        .expect("no ticket may hang");
                    if let Ok(response) = &outcome {
                        assert!(
                            rms_error(&response.buffer, &expect) < 1e-9,
                            "client {c} request {r}: wrong result"
                        );
                    }
                    outcomes.push(outcome);
                }
                outcomes
            })
        })
        .collect();
    let mut completed = 0u64;
    let mut missed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        for outcome in h.join().expect("client panicked") {
            match outcome {
                Ok(_) => completed += 1,
                Err(ServeError::DeadlineExceeded) => missed += 1,
                Err(ServeError::Internal { .. }) => failed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
    let service = Arc::into_inner(service).expect("all clients done");
    let stats = service.shutdown();
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.deadline_missed, missed);
    assert_eq!(stats.failed, failed);
    assert_eq!(stats.accepted, (CLIENTS * PER_CLIENT) as u64);
    assert!(failed > 0, "the size fault must have hit someone");
    assert!(missed > 0, "expired deadlines must have been dropped");
    assert_drained(&stats);
}

/// Shutdown with several dispatchers racing a full queue: every admitted
/// ticket settles and the drain identity holds.
#[test]
fn multi_dispatcher_shutdown_drains_under_load() {
    let service = FftService::start(ServeConfig {
        queue_capacity: 128,
        max_batch: 8,
        workers: 2,
        dispatchers: 3,
        ..ServeConfig::default()
    });
    let tickets: Vec<Ticket> = (0..60)
        .map(|i| {
            let n = if i % 2 == 0 { 1 << 8 } else { 1 << 9 };
            service
                .submit(Request::new(signal(n, i as f64)))
                .expect("admitted")
        })
        .collect();
    // Shut down immediately: dispatchers must drain everything first.
    let stats = service.shutdown();
    for t in tickets {
        wait_bounded(t).expect("drained requests complete successfully");
    }
    assert_eq!(stats.completed, 60);
    assert_eq!(stats.failed, 0);
    assert_drained(&stats);
}

/// Stats JSON export round-trips through the workspace JSON parser with the
/// documented keys present.
#[test]
fn serve_stats_json_is_parseable() {
    let service = FftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    for _ in 0..3 {
        service
            .submit(Request::new(signal(1 << 8, 0.0)))
            .expect("admitted")
            .wait()
            .expect("completed");
    }
    let stats = service.shutdown();
    let json = stats.to_json().to_string_pretty();
    let parsed = fgsupport::json::parse(&json).expect("valid JSON");
    assert_eq!(parsed.get("completed").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(parsed.get("failed").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(
        parsed.get("dispatcher_restarts").and_then(|v| v.as_u64()),
        Some(0)
    );
    assert!(parsed
        .get("planner")
        .and_then(|p| p.get("hit_rate"))
        .is_some());
}

/// A service started with `wisdom_path` serves bit-exact results vs an
/// untuned service: wisdom reorders execution of the same codelet DAG and
/// the DAG fixes the arithmetic. Also covers the tolerant-startup paths —
/// a missing or corrupt wisdom file must not stop the service.
#[test]
fn wisdom_tuned_service_is_bit_exact_vs_untuned() {
    let n = 1 << 10;
    let dir = std::env::temp_dir().join(format!("fgserve-wisdom-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("wisdom.json");

    // Wisdom tuning the exact key the service will use.
    let version = Version::FineGuided;
    let key = PlanKey::new(n, version, version.layout());
    let tuning = fgfft::ScheduleTuning {
        pool_order: Some((0..(n >> 6)).rev().collect()),
        last_early: None,
        transpose_block_log2: None,
    };
    // On-disk wisdom must be certified to load under the default policy.
    let cert = fgfft::cert::Certificate::for_plan(&fgfft::Plan::build_tuned(key, Some(&tuning)))
        .expect("tuning is valid");
    let mut wisdom = fgfft::wisdom::Wisdom::new();
    wisdom.insert(fgfft::wisdom::WisdomEntry {
        key,
        tuning,
        workers: 2,
        batch: 4,
        backend: Default::default(),
        median_ns: 1,
        seed_median_ns: 2,
        cert: Some(cert),
    });
    wisdom.save(&path).expect("save wisdom");

    let inputs: Vec<Vec<Complex64>> = (0..6).map(|i| signal(n, i as f64 * 0.3)).collect();
    let serve_all = |config: ServeConfig| -> Vec<Vec<Complex64>> {
        let service = FftService::start(config);
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|input| {
                service
                    .submit(Request::new(input.clone()))
                    .expect("admitted")
            })
            .collect();
        let out = tickets
            .into_iter()
            .map(|t| wait_bounded(t).expect("completed").buffer.into_vec())
            .collect();
        assert_drained(&service.shutdown());
        out
    };

    let untuned = serve_all(ServeConfig {
        version,
        workers: 2,
        ..ServeConfig::default()
    });
    let tuned_service = FftService::start(ServeConfig {
        version,
        workers: 2,
        wisdom_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    assert!(
        matches!(
            tuned_service.wisdom_status(),
            Some(fgfft::wisdom::WisdomStatus::Loaded { entries: 1 })
        ),
        "{:?}",
        tuned_service.wisdom_status()
    );
    let tuned: Vec<Vec<Complex64>> = {
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|input| {
                tuned_service
                    .submit(Request::new(input.clone()))
                    .expect("admitted")
            })
            .collect();
        let out = tickets
            .into_iter()
            .map(|t| wait_bounded(t).expect("completed").buffer.into_vec())
            .collect();
        assert_drained(&tuned_service.shutdown());
        out
    };
    assert_eq!(tuned, untuned, "wisdom changed results");

    // Tolerant startup: missing and corrupt wisdom files serve fine.
    let missing = serve_with_status(dir.join("does-not-exist.json"), version, &inputs[0]);
    assert!(matches!(
        missing,
        Some(fgfft::wisdom::WisdomStatus::Missing)
    ));
    let corrupt_path = dir.join("corrupt.json");
    std::fs::write(&corrupt_path, "{ torn").expect("write corrupt file");
    let corrupt = serve_with_status(corrupt_path, version, &inputs[0]);
    assert!(matches!(
        corrupt,
        Some(fgfft::wisdom::WisdomStatus::Corrupt)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Start a service with `wisdom_path`, serve one request, return the
/// wisdom status.
fn serve_with_status(
    path: std::path::PathBuf,
    version: Version,
    input: &[Complex64],
) -> Option<fgfft::wisdom::WisdomStatus> {
    let service = FftService::start(ServeConfig {
        version,
        workers: 2,
        wisdom_path: Some(path),
        ..ServeConfig::default()
    });
    let status = service.wisdom_status();
    let ticket = service
        .submit(Request::new(input.to_vec()))
        .expect("admitted");
    wait_bounded(ticket).expect("completed");
    assert_drained(&service.shutdown());
    status
}
