//! Integration and randomized tests for the extended transform surface:
//! real-input FFT, arbitrary-length Bluestein DFT, 2-D FFT, STFT, and the
//! Stockham baseline — all validated against each other and the naive
//! oracles. Random inputs come from a seeded PRNG.

use fgfft::fft2d::{naive_dft2d, Fft2d};
use fgfft::reference::naive_dft;
use fgfft::stockham::stockham_fft;
use fgfft::{rms_error, Complex64, StftConfig, Window};
use fgsupport::rng::Rng64;

fn cx(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

fn complex_vec(rng: &mut Rng64, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| cx(rng.gen_range_f64(-1.0..1.0), rng.gen_range_f64(-1.0..1.0)))
        .collect()
}

/// Bluestein matches the naive DFT for arbitrary lengths.
#[test]
fn bluestein_matches_naive() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(1100 + case);
        let n = rng.gen_range(1..160);
        let x = complex_vec(&mut rng, n);
        let got = fgfft::dft(&x);
        let expect = naive_dft(&x);
        assert!(rms_error(&got, &expect) < 1e-8, "case {case} n={n}");
    }
}

/// Bluestein round-trips for arbitrary lengths.
#[test]
fn bluestein_roundtrip() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(1200 + case);
        let n = rng.gen_range(1..200);
        let x = complex_vec(&mut rng, n);
        let back = fgfft::idft(&fgfft::dft(&x));
        assert!(rms_error(&back, &x) < 1e-9, "case {case} n={n}");
    }
}

/// rfft agrees with the complex transform on the nonredundant half.
#[test]
fn rfft_matches_complex_path() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(1300 + case);
        let raw: Vec<f64> = (0..8).map(|_| rng.gen_range_f64(-1.0..1.0)).collect();
        let n = 64usize << rng.gen_range(0..6);
        let signal: Vec<f64> = (0..n)
            .map(|i| raw[i % raw.len()] * ((i as f64) * 0.173).sin())
            .collect();
        let spec = fgfft::rfft(&signal);
        let mut full: Vec<Complex64> = signal.iter().map(|&v| cx(v, 0.0)).collect();
        fgfft::forward(&mut full);
        for k in 0..=n / 2 {
            assert!(spec[k].dist(full[k]) < 1e-8, "case {case} bin {k}");
        }
    }
}

/// Stockham agrees with the codelet FFT on random inputs.
#[test]
fn stockham_matches_codelet() {
    for case in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(1400 + case);
        let x = complex_vec(&mut rng, 256);
        let a = stockham_fft(x.clone());
        let mut b = x;
        fgfft::forward(&mut b);
        assert!(rms_error(&a, &b) < 1e-9, "case {case}");
    }
}

#[test]
fn fft2d_matches_naive_oracle() {
    let (r, c) = (8, 32);
    let img: Vec<Complex64> = (0..r * c)
        .map(|i| cx((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect();
    let expect = naive_dft2d(&img, r, c);
    let mut got = img;
    Fft2d::with_workers(r, c, 4).forward(&mut got);
    assert!(rms_error(&got, &expect) < 1e-9);
}

#[test]
fn fft2d_row_of_tones_concentrates() {
    // A plane wave concentrates at a single 2-D bin.
    let (rows, cols) = (32, 64);
    let (kr, kc) = (5, 11);
    let img: Vec<Complex64> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            Complex64::expi(
                2.0 * std::f64::consts::PI * (kr * r) as f64 / rows as f64
                    + 2.0 * std::f64::consts::PI * (kc * c) as f64 / cols as f64,
            )
        })
        .collect();
    let mut f = img;
    Fft2d::new(rows, cols).forward(&mut f);
    let peak = f[kr * cols + kc];
    assert!(peak.dist(cx((rows * cols) as f64, 0.0)) < 1e-7);
    let leak = f
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != kr * cols + kc)
        .map(|(_, v)| v.abs())
        .fold(0.0, f64::max);
    assert!(leak < 1e-7, "leakage {leak}");
}

#[test]
fn stft_parseval_per_frame() {
    // Each frame's spectrum energy matches the windowed frame's energy
    // (rfft halves need the conjugate-symmetric double-count).
    let n = 4096;
    let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
    let config = StftConfig {
        frame_len: 256,
        hop: 256,
        window: Window::Hamming,
    };
    let frames = fgfft::stft(&signal, &config);
    let coeffs = config.window.coefficients(config.frame_len);
    for (f, spec) in frames.iter().enumerate() {
        let time_energy: f64 = (0..config.frame_len)
            .map(|i| {
                let v = signal[f * config.hop + i] * coeffs[i];
                v * v
            })
            .sum();
        let mut freq_energy = spec[0].norm_sqr() + spec[config.frame_len / 2].norm_sqr();
        for v in &spec[1..config.frame_len / 2] {
            freq_energy += 2.0 * v.norm_sqr();
        }
        freq_energy /= config.frame_len as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0),
            "frame {f}: {time_energy} vs {freq_energy}"
        );
    }
}

#[test]
fn bluestein_handles_every_small_length() {
    for n in 1..=48 {
        let x: Vec<Complex64> = (0..n)
            .map(|i| cx((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let got = fgfft::dft(&x);
        let expect = naive_dft(&x);
        assert!(rms_error(&got, &expect) < 1e-9, "n={n}");
    }
}

#[test]
fn windows_reduce_stft_sidelobes() {
    // An off-bin tone: the Hann spectrogram's off-peak energy is far below
    // the rectangular one's.
    let n = 8192;
    let frame_len = 512;
    let signal: Vec<f64> = (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * 40.37 * i as f64 / frame_len as f64).sin())
        .collect();
    let energy_far = |w: Window| -> f64 {
        let spec = fgfft::spectrogram(
            &signal,
            &StftConfig {
                frame_len,
                hop: 512,
                window: w,
            },
        );
        (0..spec.frames)
            .map(|f| {
                (100..spec.config.bins())
                    .map(|b| spec.at(f, b))
                    .sum::<f64>()
            })
            .sum()
    };
    let rect = energy_far(Window::Rectangular);
    let hann = energy_far(Window::Hann);
    assert!(hann < rect / 50.0, "hann {hann} vs rect {rect}");
}
