//! Cross-version bit-exactness: the five Table-I versions are *schedules*
//! of one and the same arithmetic. Every codelet reads its inputs only
//! after its parents complete and performs a fixed butterfly sequence with
//! fixed twiddle values, so the result must be bitwise identical across
//! versions and across worker counts — any divergence means a schedule
//! reordered arithmetic it had no right to touch. The shared result must
//! also agree with the recursive-FFT oracle to an accuracy that scales
//! with N.
//!
//! The same argument extends to execution *backends*: scalar, SIMD
//! (AVX2 or the portable four-lane fallback, radix-4 or radix-8 register
//! fusion) and the threaded work-stealing pool all drive the identical
//! certified plan tables, and the SIMD complex multiply deliberately
//! avoids FMA so each lane rounds exactly like the scalar code. Any bit
//! of divergence is a kernel bug, not round-off.

use codelet::runtime::Runtime;
use fgfft::reference::recursive_fft;
use fgfft::{
    fft_in_place, rms_error, Backend, BackendSel, Complex64, ExecConfig, HostSimd, Plan, PlanKey,
    SeedOrder, Version,
};
use std::sync::Arc;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex64::new(
                (t * 0.613).sin() - 0.3 * (t * 0.047).cos(),
                (t * 0.291).cos(),
            )
        })
        .collect()
}

fn bits(data: &[Complex64]) -> Vec<(u64, u64)> {
    data.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

#[test]
fn backends_are_bit_exact_across_versions_sizes_and_batches() {
    // Every backend × every Table-I version × three sizes × two batch
    // shapes, all compared bitwise against the plan's own scalar path.
    // `simd-portable` forces the four-lane fallback even on AVX2 hosts,
    // so both vector code paths are pinned no matter where this runs.
    let backends: Vec<(&str, Arc<dyn Backend>)> = vec![
        ("scalar", BackendSel::SCALAR.build()),
        ("simd-r4", BackendSel::parse("simd-r4").unwrap().build()),
        ("simd-r8", BackendSel::SIMD.build()),
        ("simd-portable", Arc::new(HostSimd::portable(3))),
        ("threaded-scalar", BackendSel::THREADED_SCALAR.build()),
        ("threaded-simd", BackendSel::THREADED_SIMD.build()),
    ];
    let runtime = Runtime::with_workers(4);
    for n_log2 in [8u32, 12, 16] {
        let n = 1usize << n_log2;
        let input = signal(n);
        for version in Version::paper_set(SeedOrder::Natural) {
            let plan = Arc::new(Plan::build(PlanKey::new(n, version, version.layout())));
            let mut want = input.clone();
            plan.execute(&mut want, &runtime);
            let want = bits(&want);
            for (name, backend) in &backends {
                let prepared = backend.prepare(&plan);
                for batch in [1usize, 4] {
                    let mut buffers = vec![input.clone(); batch];
                    let mut views: Vec<&mut [Complex64]> =
                        buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
                    prepared.execute_batch(&mut views, &runtime);
                    for (i, buffer) in buffers.iter().enumerate() {
                        assert!(
                            bits(buffer) == want,
                            "{name} {} N=2^{n_log2} batch {batch} buffer {i}: bitwise drift",
                            version.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn threaded_stage_barrier_smoke() {
    // Churn the threaded backend's per-stage barrier under contention:
    // four workers, batched buffers, repeated dispatches. The point is
    // less the (also checked) bits than the memory orderings — CI runs
    // this test under ThreadSanitizer.
    let n = 1usize << 8;
    let version = Version::FineGuided;
    let plan = Arc::new(Plan::build(PlanKey::new(n, version, version.layout())));
    let prepared = BackendSel::THREADED_SIMD.build().prepare(&plan);
    let runtime = Runtime::with_workers(4);
    let input = signal(n);
    let mut want = input.clone();
    plan.execute(&mut want, &runtime);
    let want = bits(&want);
    for _ in 0..16 {
        let mut buffers = vec![input.clone(); 3];
        let mut views: Vec<&mut [Complex64]> =
            buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
        prepared.execute_batch(&mut views, &runtime);
        for buffer in &buffers {
            assert!(bits(buffer) == want, "barrier smoke: bitwise drift");
        }
    }
}

#[test]
fn paper_versions_are_bit_exact_across_workers() {
    for n_log2 in [12u32, 18] {
        let n = 1usize << n_log2;
        let input = signal(n);
        let oracle = recursive_fft(&input);
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for version in Version::paper_set(SeedOrder::Natural) {
            for workers in [1usize, 2, 8] {
                let mut data = input.clone();
                fft_in_place(&mut data, version, &ExecConfig::with_workers(workers));
                let err = rms_error(&data, &oracle);
                // Round-off grows like sqrt(log N); 1e-12·n is far above
                // that but far below any algorithmic error.
                assert!(
                    err < 1e-12 * n as f64,
                    "{} @ {workers}w, N=2^{n_log2}: rms {err}",
                    version.name()
                );
                let got = bits(&data);
                match &baseline {
                    None => baseline = Some(got),
                    Some(want) => assert_eq!(
                        &got,
                        want,
                        "{} @ {workers}w, N=2^{n_log2}: bitwise drift from baseline",
                        version.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn backends_are_bit_exact_for_composite_kinds() {
    // The composite kinds (r2c/c2r untangle stages, 2D transposes) wrap
    // the same certified inner wave every backend drives, so the bitwise
    // argument extends unchanged: every backend × R2C and 2D × two sizes
    // × two batch shapes against the plan's own scalar path.
    use fgfft::TransformKind;
    let backends: Vec<(&str, Arc<dyn Backend>)> = vec![
        ("scalar", BackendSel::SCALAR.build()),
        ("simd-r8", BackendSel::SIMD.build()),
        ("simd-portable", Arc::new(HostSimd::portable(3))),
        ("threaded-simd", BackendSel::THREADED_SIMD.build()),
    ];
    let cases = [
        (TransformKind::R2C, 10u32),
        (TransformKind::R2C, 14),
        (
            TransformKind::C2C2D {
                rows_log2: 5,
                cols_log2: 5,
            },
            10,
        ),
        (
            TransformKind::C2C2D {
                rows_log2: 7,
                cols_log2: 7,
            },
            14,
        ),
    ];
    let runtime = Runtime::with_workers(4);
    for (kind, n_log2) in cases {
        for version in Version::paper_set(SeedOrder::Natural) {
            let plan = Arc::new(Plan::build(PlanKey::with_kind(
                kind,
                1usize << n_log2,
                version,
                version.layout(),
                6,
            )));
            let input = signal(plan.buffer_len());
            let mut want = input.clone();
            plan.execute(&mut want, &runtime);
            let want = bits(&want);
            for (name, backend) in &backends {
                let prepared = backend.prepare(&plan);
                for batch in [1usize, 3] {
                    let mut buffers = vec![input.clone(); batch];
                    let mut views: Vec<&mut [Complex64]> =
                        buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
                    prepared.execute_batch(&mut views, &runtime);
                    for (i, buffer) in buffers.iter().enumerate() {
                        assert!(
                            bits(buffer) == want,
                            "{name} {} {kind:?} N=2^{n_log2} batch {batch} buffer {i}: \
                             bitwise drift",
                            version.name()
                        );
                    }
                }
            }
        }
    }
}
