//! Cross-version bit-exactness: the five Table-I versions are *schedules*
//! of one and the same arithmetic. Every codelet reads its inputs only
//! after its parents complete and performs a fixed butterfly sequence with
//! fixed twiddle values, so the result must be bitwise identical across
//! versions and across worker counts — any divergence means a schedule
//! reordered arithmetic it had no right to touch. The shared result must
//! also agree with the recursive-FFT oracle to an accuracy that scales
//! with N.

use fgfft::reference::recursive_fft;
use fgfft::{fft_in_place, rms_error, Complex64, ExecConfig, SeedOrder, Version};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex64::new(
                (t * 0.613).sin() - 0.3 * (t * 0.047).cos(),
                (t * 0.291).cos(),
            )
        })
        .collect()
}

fn bits(data: &[Complex64]) -> Vec<(u64, u64)> {
    data.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

#[test]
fn paper_versions_are_bit_exact_across_workers() {
    for n_log2 in [12u32, 18] {
        let n = 1usize << n_log2;
        let input = signal(n);
        let oracle = recursive_fft(&input);
        let mut baseline: Option<Vec<(u64, u64)>> = None;
        for version in Version::paper_set(SeedOrder::Natural) {
            for workers in [1usize, 2, 8] {
                let mut data = input.clone();
                fft_in_place(&mut data, version, &ExecConfig::with_workers(workers));
                let err = rms_error(&data, &oracle);
                // Round-off grows like sqrt(log N); 1e-12·n is far above
                // that but far below any algorithmic error.
                assert!(
                    err < 1e-12 * n as f64,
                    "{} @ {workers}w, N=2^{n_log2}: rms {err}",
                    version.name()
                );
                let got = bits(&data);
                match &baseline {
                    None => baseline = Some(got),
                    Some(want) => assert_eq!(
                        &got,
                        want,
                        "{} @ {workers}w, N=2^{n_log2}: bitwise drift from baseline",
                        version.name()
                    ),
                }
            }
        }
    }
}
