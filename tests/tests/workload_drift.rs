//! Workload-layer drift tests: the static decomposition in `fgfft::workload`
//! must describe *exactly* what every consumer does with it.
//!
//! Two identities, each over all five Table-I versions × both twiddle
//! layouts:
//!
//! 1. **Execution drift** — a host run through `Plan::execute_recorded`
//!    captures, per codelet, the element indices the hot path gathered and
//!    scattered and the twiddle values it multiplied by, straight from the
//!    materialized stage tables. Those observations must equal the workload
//!    layer's static footprint codelet-for-codelet: same data addresses in
//!    the same order, same twiddle addresses, bitwise the same twiddle
//!    values.
//! 2. **Bank accounting** — `fgcheck`'s whole-run static per-bank histogram
//!    (pure address algebra) must equal the per-bank access counts the
//!    `c64sim` memory system measures when it actually replays the schedule.
//!
//! Either identity breaking means the "single authority" has forked from a
//! consumer — precisely the bug class the workload refactor exists to
//! prevent.

use c64sim::{ChipConfig, SimOptions};
use codelet::runtime::Runtime;
use fgcheck::{check_fft, FftCheckOptions};
use fgfft::planner::{Plan, PlanKey};
use fgfft::simwork::run_sim_with_layout;
use fgfft::workload::{interleave, Region, SeedOrder, Version, Workload};
use fgfft::{Complex64, FftPlan, TwiddleLayout};

/// n_log2 = 12 gives 2 stages (exercising the guided small-plan fallback);
/// n_log2 = 13 gives 3 stages with a partial 1-level last stage (exercising
/// the guided early/late split and the partial-stage twiddle algebra).
const SIZES: [u32; 2] = [12, 13];
const LAYOUTS: [TwiddleLayout; 2] = [TwiddleLayout::Linear, TwiddleLayout::BitReversedHash];

fn versions() -> [Version; 5] {
    Version::paper_set(SeedOrder::Natural)
}

fn test_signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new(
                (t * 37.0).sin() + 0.25 * (t * 101.0).cos(),
                0.5 * (t * 53.0).cos(),
            )
        })
        .collect()
}

#[test]
fn recorded_execution_matches_static_footprints() {
    let runtime = Runtime::with_workers(4);
    for n_log2 in SIZES {
        for layout in LAYOUTS {
            for version in versions() {
                let plan = Plan::build(PlanKey::new(1 << n_log2, version, layout));
                let workload = Workload::new(FftPlan::new(n_log2, 6), layout);
                let mut data = test_signal(1 << n_log2);
                let (_, records) = plan.execute_recorded(&mut data, &runtime);

                let ctx = format!("{} / {layout:?} / N=2^{n_log2}", version.name());
                assert_eq!(
                    records.len(),
                    workload.plan().total_codelets(),
                    "{ctx}: one record per codelet"
                );
                for (id, rec) in records.iter().enumerate() {
                    // Partition the static footprint by region, preserving
                    // the emit order within each.
                    let mut data_reads = Vec::new();
                    let mut data_writes = Vec::new();
                    let mut twiddle_reads = Vec::new();
                    workload.for_each_op(id, |op| match op.region {
                        Region::Data if op.range.write => data_writes.push(op.range.lo),
                        Region::Data => data_reads.push(op.range.lo),
                        Region::Twiddle => twiddle_reads.push(op.range.lo),
                        Region::Spill | Region::Scratch => {
                            panic!("{ctx}: 1D C2C codelets never spill or touch scratch")
                        }
                    });

                    let observed_reads: Vec<u64> = rec
                        .reads
                        .iter()
                        .map(|&e| workload.data_addr(e as usize))
                        .collect();
                    let observed_writes: Vec<u64> = rec
                        .writes
                        .iter()
                        .map(|&e| workload.data_addr(e as usize))
                        .collect();
                    assert_eq!(observed_reads, data_reads, "{ctx}: codelet {id} gathers");
                    assert_eq!(observed_writes, data_writes, "{ctx}: codelet {id} scatters");

                    // The static twiddle address stream, derived again from
                    // the descriptor (not from for_each_op), must agree.
                    let stage = workload.plan().stage_of(id);
                    let idx = workload.plan().idx_of(id);
                    let mut desc_twiddles = Vec::new();
                    fgfft::workload::for_each_twiddle_index(workload.plan(), stage, idx, |t| {
                        desc_twiddles.push(workload.twiddle_addr(t));
                    });
                    assert_eq!(
                        desc_twiddles, twiddle_reads,
                        "{ctx}: codelet {id} twiddle addresses"
                    );

                    // And the *values* the kernel actually multiplied by are
                    // bitwise the descriptor's twiddle run.
                    let expected = workload.descriptor(id).twiddle_run(plan.twiddles());
                    assert_eq!(
                        rec.twiddles.len(),
                        expected.len(),
                        "{ctx}: codelet {id} twiddle run length"
                    );
                    for (k, (got, want)) in rec.twiddles.iter().zip(&expected).enumerate() {
                        assert!(
                            got.re.to_bits() == want.re.to_bits()
                                && got.im.to_bits() == want.im.to_bits(),
                            "{ctx}: codelet {id} twiddle {k}: {got:?} != {want:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn static_bank_totals_equal_simulated_totals() {
    let chip = ChipConfig::cyclops64().with_thread_units(16);
    let options = SimOptions::default();
    for n_log2 in SIZES {
        let plan = FftPlan::new(n_log2, 6);
        for layout in LAYOUTS {
            for version in versions() {
                let report = check_fft(&FftCheckOptions {
                    layout: Some(layout),
                    ..FftCheckOptions::new(n_log2, version)
                });
                let banks = interleave().banks;
                let mut static_totals = vec![0u64; banks];
                for row in &report.bank.hist {
                    for (b, &c) in row.iter().enumerate() {
                        static_totals[b] += c;
                    }
                }
                let sim = run_sim_with_layout(plan, version, layout, &chip, &options);
                assert_eq!(
                    static_totals,
                    sim.bank_accesses,
                    "{} / {layout:?} / N=2^{n_log2}: static bank histogram \
                     must equal the measured access counts",
                    version.name()
                );
            }
        }
    }
}
