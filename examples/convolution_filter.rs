//! FFT-based FIR filtering: denoise a signal by convolving it with a
//! windowed-sinc low-pass kernel, using the convolution theorem
//! (`fgfft::convolve`) — and verify against direct convolution while
//! comparing their cost.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin convolution_filter`

use fgfft::{convolve, rms_error, Complex64};
use std::f64::consts::PI;
use std::time::Instant;

/// Windowed-sinc low-pass FIR kernel (Hamming window), cutoff as a fraction
/// of the sample rate.
fn lowpass_kernel(taps: usize, cutoff: f64) -> Vec<Complex64> {
    let m = (taps - 1) as f64;
    (0..taps)
        .map(|i| {
            let x = i as f64 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * x).sin() / (PI * x)
            };
            let window = 0.54 - 0.46 * (2.0 * PI * i as f64 / m).cos();
            Complex64::new(sinc * window, 0.0)
        })
        .collect()
}

/// O(N·M) direct convolution, the correctness oracle.
fn convolve_direct(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

fn main() {
    // A slow ramp + low tone, contaminated with a strong high-frequency
    // chirp that the filter should remove.
    let n = 1 << 15;
    let signal: Vec<Complex64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let wanted = (2.0 * PI * 6.0 * t).sin() + 0.3 * t;
            let noise = 0.8 * (2.0 * PI * (4_000.0 + 3_000.0 * t) * t).sin();
            Complex64::new(wanted + noise, 0.0)
        })
        .collect();
    let kernel = lowpass_kernel(129, 0.01);

    // FFT-based convolution.
    let start = Instant::now();
    let filtered = convolve(&signal, &kernel);
    let fft_time = start.elapsed();

    // Direct convolution for both the oracle and the cost comparison.
    let start = Instant::now();
    let direct = convolve_direct(&signal, &kernel);
    let direct_time = start.elapsed();

    let err = rms_error(&filtered, &direct);
    println!(
        "FFT convolution:    {fft_time:9.2?}  ({} output samples)",
        filtered.len()
    );
    println!("direct convolution: {direct_time:9.2?}");
    println!("rms(FFT − direct) = {err:.3e}");
    assert!(err < 1e-9, "convolution theorem violated");

    // Filter quality: the high-frequency energy must be strongly reduced.
    let hf_energy = |x: &[Complex64]| -> f64 {
        let mut f = x[..n].to_vec();
        fgfft::forward(&mut f);
        f[n / 8..n / 2].iter().map(|v| v.norm_sqr()).sum()
    };
    let before = hf_energy(&signal);
    let after = hf_energy(&filtered);
    println!(
        "high-band energy: {before:.1} before → {after:.3} after ({:.0} dB attenuation)",
        10.0 * (before / after).log10()
    );
    assert!(
        after < before / 1e3,
        "low-pass filter must attenuate the chirp"
    );
    println!("chirp removed ✓");
}
