//! The codelet runtime beyond FFT: a wavefront dynamic-programming
//! computation (Needleman–Wunsch sequence alignment) expressed as a codelet
//! graph. Each codelet scores one tile of the DP matrix and depends on its
//! north, west, and north-west neighbours — a classic fine-grain dependence
//! pattern that coarse-grain barriers handle poorly (every anti-diagonal
//! would need one).
//!
//! Run with: `cargo run --release -p fgfft-examples --bin codelet_wavefront`

use codelet::graph::{CodeletId, CodeletProgram};
use codelet::pool::PoolDiscipline;
use codelet::runtime::{Runtime, RuntimeConfig};
use fgsupport::rng::Rng64;
use std::sync::atomic::{AtomicI64, Ordering};

const TILE: usize = 64;
const MATCH: i64 = 2;
const MISMATCH: i64 = -1;
const GAP: i64 = -2;

/// Tiled DP grid as a codelet program: codelet (r, c) = tile row r, col c.
struct Wavefront {
    tiles_x: usize,
    tiles_y: usize,
}

impl CodeletProgram for Wavefront {
    fn num_codelets(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    fn dep_count(&self, id: CodeletId) -> u32 {
        let (r, c) = (id / self.tiles_x, id % self.tiles_x);
        // North, west (the diagonal value arrives through either).
        (r > 0) as u32 + (c > 0) as u32
    }

    fn dependents(&self, id: CodeletId, out: &mut Vec<CodeletId>) {
        let (r, c) = (id / self.tiles_x, id % self.tiles_x);
        if c + 1 < self.tiles_x {
            out.push(id + 1);
        }
        if r + 1 < self.tiles_y {
            out.push(id + self.tiles_x);
        }
    }
}

#[allow(clippy::needless_range_loop)] // x indexes two arrays in lockstep
fn main() {
    let mut rng = Rng64::seed_from_u64(7);
    let len_a = 4 * TILE * 8;
    let len_b = 3 * TILE * 8;
    let a: Vec<u8> = (0..len_a).map(|_| rng.gen_range(0..4) as u8).collect();
    let b: Vec<u8> = (0..len_b).map(|_| rng.gen_range(0..4) as u8).collect();

    let tiles_x = len_a / TILE;
    let tiles_y = len_b / TILE;
    let program = Wavefront { tiles_x, tiles_y };
    println!(
        "aligning {len_b}x{len_a} DP matrix as {tiles_y}x{tiles_x} = {} codelets",
        program.num_codelets()
    );

    // Shared DP state: the full score matrix, one atomic per cell so tiles
    // can publish to their neighbours without locks. (A production aligner
    // would keep only the frontier; the full matrix keeps the example
    // simple and checkable.)
    let width = len_a + 1;
    let height = len_b + 1;
    let grid: Vec<AtomicI64> = (0..width * height).map(|_| AtomicI64::new(0)).collect();
    for x in 0..width {
        grid[x].store(x as i64 * GAP, Ordering::Relaxed);
    }
    for y in 0..height {
        grid[y * width].store(y as i64 * GAP, Ordering::Relaxed);
    }

    let score_tile = |id: CodeletId| {
        let (tr, tc) = (id / tiles_x, id % tiles_x);
        for y in tr * TILE + 1..=(tr + 1) * TILE {
            for x in tc * TILE + 1..=(tc + 1) * TILE {
                let sub = if a[x - 1] == b[y - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
                let diag = grid[(y - 1) * width + (x - 1)].load(Ordering::Relaxed) + sub;
                let up = grid[(y - 1) * width + x].load(Ordering::Relaxed) + GAP;
                let left = grid[y * width + (x - 1)].load(Ordering::Relaxed) + GAP;
                grid[y * width + x].store(diag.max(up).max(left), Ordering::Relaxed);
            }
        }
    };

    // Parallel dataflow execution.
    let runtime = Runtime::new(RuntimeConfig::default());
    let stats = runtime.run(&program, PoolDiscipline::WorkSteal, score_tile);
    let parallel_score = grid[height * width - 1].load(Ordering::SeqCst);
    println!(
        "parallel: {} codelets on {} workers in {:.2?} (load-imbalance CV {:.3})",
        stats.total_fired,
        runtime.workers(),
        stats.elapsed,
        stats.load_imbalance_cv()
    );

    // Sequential oracle.
    let mut oracle = vec![0i64; width * height];
    for x in 0..width {
        oracle[x] = x as i64 * GAP;
    }
    for (y, row) in oracle.chunks_mut(width).enumerate().skip(1) {
        row[0] = y as i64 * GAP;
    }
    for y in 1..height {
        for x in 1..width {
            let sub = if a[x - 1] == b[y - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = oracle[(y - 1) * width + (x - 1)] + sub;
            let up = oracle[(y - 1) * width + x] + GAP;
            let left = oracle[y * width + (x - 1)] + GAP;
            oracle[y * width + x] = diag.max(up).max(left);
        }
    }
    let oracle_score = oracle[height * width - 1];

    println!("alignment score: parallel {parallel_score}, sequential {oracle_score}");
    assert_eq!(parallel_score, oracle_score, "dataflow execution diverged");
    println!("wavefront dataflow matches the sequential oracle ✓");
}
