//! Spectrogram: track a frequency-hopping transmitter through time with
//! the short-time Fourier transform (`fgfft::stft`), rendered as ASCII art.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin spectrogram`

use fgfft::{spectrogram, StftConfig, Window};
use std::f64::consts::PI;

const SAMPLE_RATE: f64 = 8_000.0;

fn main() {
    // A transmitter that hops between four frequencies, plus noise.
    let hops = [600.0, 1800.0, 1000.0, 2600.0, 1400.0, 2200.0];
    let samples_per_hop = 4000;
    let n = hops.len() * samples_per_hop;
    let mut phase = 0.0f64;
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            let f = hops[i / samples_per_hop];
            phase += 2.0 * PI * f / SAMPLE_RATE;
            phase.sin() + 0.05 * ((i * 2654435761) % 1000) as f64 / 1000.0
        })
        .collect();

    let config = StftConfig {
        frame_len: 512,
        hop: 256,
        window: Window::Hann,
    };
    let spec = spectrogram(&signal, &config);
    let bin_hz = SAMPLE_RATE / config.frame_len as f64;
    println!(
        "{} samples at {} Hz → {} frames x {} bins ({:.1} Hz/bin)\n",
        n,
        SAMPLE_RATE,
        spec.frames,
        config.bins(),
        bin_hz
    );

    // ASCII spectrogram: time → columns, frequency → rows (0..3 kHz).
    let max_bin = (3000.0 / bin_hz) as usize;
    let rows = 24;
    let cols = spec.frames.min(78);
    let peak = spec.power.iter().cloned().fold(0.0, f64::max);
    for r in (0..rows).rev() {
        let bin_lo = r * max_bin / rows;
        let bin_hi = ((r + 1) * max_bin / rows).max(bin_lo + 1);
        print!("{:>5.0} Hz |", bin_lo as f64 * bin_hz);
        for c in 0..cols {
            let frame = c * spec.frames / cols;
            let p: f64 = (bin_lo..bin_hi).map(|b| spec.at(frame, b)).sum();
            let rel = (p / peak).sqrt();
            print!(
                "{}",
                match (rel * 5.0) as u32 {
                    0 => ' ',
                    1 => '░',
                    2 => '▒',
                    3 => '▓',
                    _ => '█',
                }
            );
        }
        println!("|");
    }

    // Verify the tracked peaks follow the hop schedule.
    let peaks = spec.peak_bins();
    let mut correct = 0;
    for (f, &peak_bin) in peaks.iter().enumerate() {
        let sample = f * config.hop + config.frame_len / 2;
        let truth = hops[(sample / samples_per_hop).min(hops.len() - 1)];
        if ((peak_bin as f64 * bin_hz) - truth).abs() <= 2.0 * bin_hz {
            correct += 1;
        }
    }
    let acc = correct as f64 / peaks.len() as f64;
    println!(
        "\nhop tracking: {}/{} frames identified the active frequency ({:.0}%)",
        correct,
        peaks.len(),
        acc * 100.0
    );
    assert!(acc > 0.85, "tracker lost the transmitter");
    println!("frequency hops tracked ✓");
}
