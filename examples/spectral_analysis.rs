//! Spectral analysis: recover the tones hidden in a noisy sampled signal —
//! the classic signal-processing workload the paper's introduction
//! motivates FFT performance with.
//!
//! A synthetic "sensor capture" (three tones + white noise) is analyzed
//! with `fgfft::power_spectrum`; the detected peaks are compared against
//! the ground truth.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin spectral_analysis`

use fgsupport::rng::Rng64;

const SAMPLE_RATE: f64 = 48_000.0;

fn main() {
    // Ground truth: three tones, amplitudes well above the noise floor.
    let tones = [(1_234.0, 1.0), (7_040.0, 0.6), (13_500.0, 0.35)];
    let capture_len = 40_000; // not a power of two: the API zero-pads

    let mut rng = Rng64::seed_from_u64(20130520); // IPPS 2013 vintage
    let signal: Vec<f64> = (0..capture_len)
        .map(|i| {
            let t = i as f64 / SAMPLE_RATE;
            let clean: f64 = tones
                .iter()
                .map(|(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                .sum();
            clean + 0.1 * (rng.gen_f64() - 0.5)
        })
        .collect();

    let (padded, spectrum) = fgfft::power_spectrum(&signal);
    println!("captured {capture_len} samples at {SAMPLE_RATE} Hz, transformed at N = {padded}");

    // Peak picking: local maxima above 10x the median power.
    let mut powers: Vec<f64> = spectrum.clone();
    powers.sort_by(f64::total_cmp);
    let median = powers[powers.len() / 2];
    let bin_hz = SAMPLE_RATE / padded as f64;
    let mut peaks: Vec<(f64, f64)> = Vec::new();
    for k in 1..spectrum.len() - 1 {
        if spectrum[k] > spectrum[k - 1]
            && spectrum[k] >= spectrum[k + 1]
            && spectrum[k] > 1e4 * median
        {
            peaks.push((k as f64 * bin_hz, spectrum[k]));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    peaks.truncate(tones.len());
    peaks.sort_by(|a, b| a.0.total_cmp(&b.0));

    println!("detected spectral peaks (bin resolution {bin_hz:.1} Hz):");
    for ((freq, power), (truth, _)) in peaks.iter().zip(&tones) {
        println!("  {freq:9.1} Hz  power {power:12.1}   (true tone {truth:9.1} Hz)");
        assert!(
            (freq - truth).abs() <= bin_hz,
            "peak {freq} Hz missed true tone {truth} Hz"
        );
    }
    println!("all {} tones recovered within one bin ✓", tones.len());
}
