//! Scheduling lab: watch the paper's phenomenon happen. Runs the same FFT
//! workload on the simulated Cyclops-64 under the coarse, guided, and
//! hashed schedules and renders the per-bank DRAM traffic as ASCII
//! sparklines — Fig. 1, Fig. 2 and Fig. 6 of the paper, live.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin scheduling_lab [n_log2]`

use c64sim::{ChipConfig, SimOptions, SimReport};
use fgfft::{run_sim, FftPlan, SeedOrder, SimVersion};

fn sparkline(values: &[f64], max: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

fn render(name: &str, report: &SimReport) {
    println!(
        "\n{name}: {:.2} GFLOPS, {} cycles, whole-run bank imbalance {:.2}",
        report.gflops,
        report.makespan_cycles,
        report.bank_imbalance()
    );
    let windows = report.trace.counts.len();
    let max = report
        .trace
        .counts
        .iter()
        .flat_map(|w| w.iter())
        .copied()
        .max()
        .unwrap_or(1) as f64;
    for bank in 0..report.trace.banks {
        let series: Vec<f64> = (0..windows)
            .map(|w| report.trace.counts[w][bank] as f64)
            .collect();
        println!("  bank {bank} {}", sparkline(&series, max));
    }
}

fn main() {
    let n_log2: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let plan = FftPlan::new(n_log2, 6);
    let chip = ChipConfig::cyclops64();
    // Size the window so each run spans ~40 sparkline cells.
    let probe = run_sim(
        plan,
        SimVersion::Coarse,
        &chip,
        &SimOptions {
            trace_window: 1 << 30,
        },
    );
    let opts = SimOptions {
        trace_window: (probe.makespan_cycles / 40).max(1),
    };

    println!(
        "N = 2^{n_log2}, {} codelets x {} stages on {} thread units",
        plan.codelets_per_stage(),
        plan.stages(),
        chip.thread_units
    );

    let coarse = run_sim(plan, SimVersion::Coarse, &chip, &opts);
    render("coarse (paper Fig. 1)", &coarse);
    println!("   ^ bank 0 saturated while banks 1-3 idle through the early stages");

    let guided = run_sim(plan, SimVersion::FineGuided, &chip, &opts);
    render("fine guided (paper Fig. 2)", &guided);
    println!("   ^ balanced late-stage codelets overlap the contended early phase");

    let hashed = run_sim(plan, SimVersion::FineHash(SeedOrder::Natural), &chip, &opts);
    render("fine + hashed twiddles (paper Fig. 6)", &hashed);
    println!("   ^ the bit-reversed twiddle layout spreads every access uniformly");

    println!(
        "\nspeedups over coarse: guided {:.2}x, hashed {:.2}x",
        guided.gflops / coarse.gflops,
        hashed.gflops / coarse.gflops
    );
}
