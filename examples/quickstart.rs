//! Quickstart: transform a signal, invert it, and inspect a spectrum — the
//! five-minute tour of the `fgfft` public API.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin quickstart`

use fgfft::{Complex64, Fft, SeedOrder, Version};

fn main() {
    // 1. A complex input signal: two tones.
    let n = 1 << 14;
    let data: Vec<Complex64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let tone_a = (2.0 * std::f64::consts::PI * 440.0 * t).sin();
            let tone_b = 0.5 * (2.0 * std::f64::consts::PI * 1000.0 * t).cos();
            Complex64::new(tone_a + tone_b, 0.0)
        })
        .collect();

    // 2. Forward transform with the default engine (guided fine-grain
    //    scheduling, 64-point codelets, all cores).
    let engine = Fft::new();
    let mut freq = data.clone();
    let stats = engine.forward(&mut freq);
    println!(
        "forward FFT of {} points: {} codelets fired in {:.2?} ({} barrier(s))",
        n, stats.codelets, stats.elapsed, stats.barriers
    );

    // 3. Strongest bins (one per tone, plus their conjugate mirrors).
    let mut bins: Vec<(usize, f64)> = freq.iter().map(|v| v.abs()).enumerate().collect();
    bins.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("strongest frequency bins:");
    for (bin, mag) in bins.iter().take(4) {
        println!("  bin {bin:5}  |X| = {mag:9.1}");
    }

    // 4. Inverse transform returns the original signal.
    engine.inverse(&mut freq);
    let err = fgfft::rms_error(&freq, &data);
    println!("inverse(forward(x)) round-trip rms error = {err:.3e}");
    assert!(err < 1e-12, "round-trip must be exact to rounding");

    // 5. Every scheduling version computes bit-identical results — the
    //    codelet graph is determinate.
    let mut reference = data.clone();
    engine.forward(&mut reference);
    for version in [
        Version::Coarse,
        Version::CoarseHash,
        Version::Fine(SeedOrder::Natural),
        Version::FineHash(SeedOrder::Reversed),
        Version::FineGuided,
    ] {
        let mut v = data.clone();
        Fft::new().with_version(version).forward(&mut v);
        assert_eq!(v, reference, "{version:?} diverged");
    }
    println!("all 5 scheduling versions produced bit-identical spectra ✓");
}
