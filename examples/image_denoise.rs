//! 2-D FFT application: frequency-domain denoising of a synthetic image.
//! A low-frequency "scene" is contaminated with high-frequency stripes;
//! a 2-D low-pass mask removes them. Exercises `fgfft::Fft2d` (row-column
//! decomposition, one codelet per row/column through the runtime).
//!
//! Run with: `cargo run --release -p fgfft-examples --bin image_denoise`

use fgfft::{Complex64, Fft2d};
use std::f64::consts::PI;

const ROWS: usize = 256;
const COLS: usize = 512;

fn scene(r: usize, c: usize) -> f64 {
    // Smooth blobs.
    let y = r as f64 / ROWS as f64;
    let x = c as f64 / COLS as f64;
    (2.0 * PI * x).sin() * (2.0 * PI * y).cos() + 0.5 * (4.0 * PI * (x + y)).sin()
}

fn stripes(r: usize, c: usize) -> f64 {
    // High-frequency diagonal interference.
    0.8 * (2.0 * PI * (60.0 * c as f64 / COLS as f64 + 40.0 * r as f64 / ROWS as f64)).sin()
}

fn rms(a: &[Complex64], b: &[f64]) -> f64 {
    (a.iter()
        .zip(b)
        .map(|(x, &y)| (x.re - y) * (x.re - y))
        .sum::<f64>()
        / a.len() as f64)
        .sqrt()
}

fn main() {
    let clean: Vec<f64> = (0..ROWS * COLS)
        .map(|i| scene(i / COLS, i % COLS))
        .collect();
    let mut image: Vec<Complex64> = (0..ROWS * COLS)
        .map(|i| Complex64::new(clean[i] + stripes(i / COLS, i % COLS), 0.0))
        .collect();

    let before = rms(&image, &clean);
    println!("{ROWS}x{COLS} image, rms error vs clean scene before filtering: {before:.4}");

    let engine = Fft2d::new(ROWS, COLS);
    engine.forward(&mut image);

    // Low-pass mask: keep bins within a radius of DC (accounting for the
    // spectrum's wrap-around symmetry).
    let keep_r = 16.0;
    let keep_c = 16.0;
    for r in 0..ROWS {
        for c in 0..COLS {
            let fr = r.min(ROWS - r) as f64;
            let fc = c.min(COLS - c) as f64;
            if (fr / keep_r).powi(2) + (fc / keep_c).powi(2) > 1.0 {
                image[r * COLS + c] = Complex64::ZERO;
            }
        }
    }

    engine.inverse(&mut image);
    let after = rms(&image, &clean);
    println!("rms error vs clean scene after low-pass:         {after:.4}");
    println!(
        "stripe suppression: {:.1} dB",
        20.0 * (before / after).log10()
    );
    assert!(
        after < before / 5.0,
        "low-pass must remove most of the stripe energy"
    );
    println!("stripes removed ✓");
}
