//! Serving quickstart: stand up an [`FftService`], push a burst of
//! requests through it from several client threads, and read the stats —
//! the five-minute tour of the `fgserve` public API.
//!
//! Run with: `cargo run --release -p fgfft-examples --bin serve_quickstart`

use fgfft::Complex64;
use fgserve::{FftService, Request, ServeConfig, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tone(n: usize, hz: f64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Complex64::new((2.0 * std::f64::consts::PI * hz * t).sin(), 0.0)
        })
        .collect()
}

fn main() {
    // 1. Start a service: bounded queue, same-size batching, one shared
    //    wisdom-style plan cache behind it.
    let service = Arc::new(FftService::start(ServeConfig {
        queue_capacity: 64,
        max_batch: 8,
        ..ServeConfig::default()
    }));

    // 2. Four client threads each submit a burst of same-size transforms.
    //    The first request builds the plan; every later one is a cache hit,
    //    and requests that queue up together share one batched dispatch.
    let n = 1 << 12;
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for r in 0..8 {
                    let bin = 50 * (c * 8 + r + 1);
                    let ticket = service
                        .submit(Request::new(tone(n, bin as f64)))
                        .expect("queue has room for this offered load");
                    let response = ticket.wait().expect("transform succeeds");
                    // Peak bin of a pure tone is the tone's frequency.
                    let peak = response
                        .buffer
                        .iter()
                        .take(n / 2)
                        .enumerate()
                        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                        .map(|(i, _)| i)
                        .unwrap();
                    assert_eq!(peak, bin, "client {c} request {r}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client finished");
    }

    // 3. Deadlines: a request whose deadline already passed is dropped at
    //    dispatch instead of wasting a transform.
    let expired = service
        .submit(Request::new(tone(n, 440.0)).with_deadline(Instant::now() - Duration::from_secs(1)))
        .expect("admission still checks only the queue");
    match expired.wait() {
        Err(ServeError::DeadlineExceeded) => println!("expired request dropped at dispatch ✓"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // 3b. Clients that cannot block forever use `wait_timeout`: a timeout
    //     hands the ticket back so waiting can resume later — the service
    //     completes and accounts for the request either way.
    let mut pending = service
        .submit(Request::new(tone(n, 440.0)))
        .expect("queue has room");
    let response = loop {
        match pending.wait_timeout(Duration::from_millis(50)) {
            Ok(outcome) => break outcome.expect("transform succeeds"),
            Err(ticket) => pending = ticket, // not done yet; keep waiting
        }
    };
    assert_eq!(response.buffer.len(), n);
    println!("wait_timeout polling completed a transform ✓");

    // 4. Shut down (drains in-flight work) and read the final stats.
    let service = Arc::into_inner(service).expect("all clients joined");
    let stats = service.shutdown();
    println!(
        "served {} requests in {} dispatches (mean batch {:.2}), \
         p50/p99 latency {:.3}/{:.3} ms",
        stats.completed,
        stats.batches,
        stats.mean_batch_size(),
        stats.latency_ms.p50,
        stats.latency_ms.p99,
    );
    println!(
        "plan cache: {} built, hit rate {:.4}, {} KiB resident",
        stats.planner.built,
        stats.planner.hit_rate(),
        stats.planner.resident_bytes / 1024,
    );
    assert_eq!(stats.completed, 33);
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0, "no panics on this run");
    assert_eq!(stats.dispatcher_restarts, 0);
    assert_eq!(
        stats.accepted,
        stats.settled(),
        "post-drain accounting identity: accepted == completed + deadline_missed + failed"
    );
    assert_eq!(stats.planner.built, 1, "one size ⇒ one plan");

    // 5. The whole snapshot is JSON-exportable for scrapers.
    println!("{}", stats.to_json().to_string_pretty());
}
